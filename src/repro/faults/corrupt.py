"""Schedule corruptions for differential verifier testing.

Where :mod:`repro.faults.chaos` attacks the *pass pipeline* (bad
weights), this module attacks finished *schedules*: each corruption in
:data:`CORRUPTION_REGISTRY` takes a known-legal schedule and applies one
precisely-understood illegal edit — shift a consumer before its operand
arrives, double-book a functional unit, move a pinned instruction off
its only legal cluster, lie about a latency, drop a needed transfer, or
launch a transfer before the value exists.

The point is calibration of :func:`repro.verify.verify_schedule`: every
corruption maps to the exact diagnostic codes it must trigger
(:data:`EXPECTED_CODES`), so the differential campaign
(:mod:`repro.faults.differential`) can demand that 100% of corrupted
schedules are flagged and that clean schedules never are.

Corruptions never mutate their input; they return a fresh
:class:`~repro.schedulers.schedule.Schedule` (or ``None`` when the kind
does not apply to this schedule, e.g. dropping a transfer from a
schedule that has none).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..ir.regions import Region
from ..machine.machine import Machine
from ..schedulers.schedule import Schedule

#: Corruption kind -> the V2xx codes at least one of which it must
#: trigger in :func:`repro.verify.verify_schedule`.
EXPECTED_CODES: Dict[str, Tuple[str, ...]] = {
    "early_start": ("V208", "V209"),
    "double_book": ("V206",),
    "bad_cluster": ("V204",),
    "wrong_latency": ("V205",),
    "drop_transfer": ("V210",),
    "early_transfer": ("V211",),
}


def _clone(schedule: Schedule) -> Schedule:
    """Copy ``schedule`` with fresh op/comm containers.

    The contained :class:`~repro.schedulers.schedule.ScheduledOp` and
    :class:`~repro.schedulers.schedule.CommEvent` values are frozen, so
    sharing them between the original and the clone is safe.
    """
    return Schedule(
        region_name=schedule.region_name,
        machine_name=schedule.machine_name,
        ops=dict(schedule.ops),
        comms=list(schedule.comms),
        scheduler_name=schedule.scheduler_name,
    )


def _pick(rng: np.random.Generator, items: List) -> object:
    """One uniformly random element of a non-empty list."""
    return items[int(rng.integers(0, len(items)))]


def corrupt_early_start(
    schedule: Schedule, region: Region, machine: Machine, rng: np.random.Generator
) -> Optional[Schedule]:
    """Shift one consumer to start before its operand is available.

    Picks a dependence edge whose timing constraint binds at a cycle
    greater than zero and moves the consumer one cycle too early —
    guaranteed V208 (value edges) or V209 (ordering edges).

    Args:
        schedule: A legal schedule to corrupt.
        region: The region the schedule implements.
        machine: The target machine (unused; kept for a uniform API).
        rng: Seeded generator choosing the edge.

    Returns:
        The corrupted schedule, or ``None`` if every constraint binds
        at cycle zero (nothing can be moved earlier).
    """
    ddg = region.ddg
    candidates: List[Tuple[int, int]] = []  # (consumer uid, illegal start)
    for edge in ddg.edges():
        if edge.src not in schedule.ops or edge.dst not in schedule.ops:
            continue
        src_op, dst_op = schedule.ops[edge.src], schedule.ops[edge.dst]
        if edge.carries_value and ddg.instruction(edge.src).defines_value:
            available = schedule.arrival_of(edge.src, dst_op.cluster)
            if available is not None and available > 0:
                candidates.append((edge.dst, available - 1))
        else:
            required = src_op.start + edge.latency
            if required > 0:
                candidates.append((edge.dst, required - 1))
    if not candidates:
        return None
    uid, start = _pick(rng, candidates)
    corrupted = _clone(schedule)
    corrupted.ops[uid] = replace(corrupted.ops[uid], start=start)
    return corrupted


def corrupt_double_book(
    schedule: Schedule, region: Region, machine: Machine, rng: np.random.Generator
) -> Optional[Schedule]:
    """Issue two instructions on the same functional unit in the same
    cycle — guaranteed V206.

    Args:
        schedule: A legal schedule to corrupt.
        region: The region the schedule implements (unused).
        machine: The target machine (unused).
        rng: Seeded generator choosing the colliding pair.

    Returns:
        The corrupted schedule, or ``None`` if no functional unit hosts
        two instructions.
    """
    by_unit: Dict[Tuple[int, int], List[int]] = {}
    for uid, op in schedule.ops.items():
        if op.unit >= 0:
            by_unit.setdefault((op.cluster, op.unit), []).append(uid)
    crowded = sorted(k for k, uids in by_unit.items() if len(uids) >= 2)
    if not crowded:
        return None
    key = _pick(rng, crowded)
    uids = sorted(by_unit[key], key=lambda u: schedule.ops[u].start)
    first, second = uids[0], uids[1]
    corrupted = _clone(schedule)
    corrupted.ops[second] = replace(
        corrupted.ops[second], start=corrupted.ops[first].start
    )
    return corrupted


def corrupt_bad_cluster(
    schedule: Schedule, region: Region, machine: Machine, rng: np.random.Generator
) -> Optional[Schedule]:
    """Move a cluster-pinned instruction to a different cluster.

    Targets instructions pinned by explicit preplacement or by hard
    memory-bank affinity, whose only legal cluster is the one they sit
    on — guaranteed V204.

    Args:
        schedule: A legal schedule to corrupt.
        region: The region the schedule implements.
        machine: The target machine model.
        rng: Seeded generator choosing the victim.

    Returns:
        The corrupted schedule, or ``None`` when the machine has a
        single cluster or nothing is pinned.
    """
    if machine.n_clusters < 2:
        return None
    ddg = region.ddg
    pinned = []
    for uid in sorted(schedule.ops):
        if not 0 <= uid < len(ddg):
            continue
        inst = ddg.instruction(uid)
        if inst.home_cluster is not None or (
            inst.is_memory
            and inst.bank is not None
            and machine.memory_affinity == "hard"
        ):
            pinned.append(uid)
    if not pinned:
        return None
    uid = _pick(rng, pinned)
    corrupted = _clone(schedule)
    op = corrupted.ops[uid]
    corrupted.ops[uid] = replace(op, cluster=(op.cluster + 1) % machine.n_clusters)
    return corrupted


def corrupt_wrong_latency(
    schedule: Schedule, region: Region, machine: Machine, rng: np.random.Generator
) -> Optional[Schedule]:
    """Record a latency one cycle longer than the machine model's —
    guaranteed V205.

    Args:
        schedule: A legal schedule to corrupt.
        region: The region the schedule implements.
        machine: The target machine (unused).
        rng: Seeded generator choosing the victim.

    Returns:
        The corrupted schedule, or ``None`` for an empty schedule.
    """
    uids = sorted(
        uid for uid in schedule.ops if 0 <= uid < len(region.ddg)
    )
    if not uids:
        return None
    uid = _pick(rng, uids)
    corrupted = _clone(schedule)
    op = corrupted.ops[uid]
    corrupted.ops[uid] = replace(op, latency=op.latency + 1)
    return corrupted


def corrupt_drop_transfer(
    schedule: Schedule, region: Region, machine: Machine, rng: np.random.Generator
) -> Optional[Schedule]:
    """Delete every transfer carrying one value to a cluster that reads
    it remotely — guaranteed V210.

    Args:
        schedule: A legal schedule to corrupt.
        region: The region the schedule implements.
        machine: The target machine (unused).
        rng: Seeded generator choosing the (value, cluster) pair.

    Returns:
        The corrupted schedule, or ``None`` when no consumer depends on
        a transferred value.
    """
    ddg = region.ddg
    needed = set()
    for edge in ddg.edges():
        if edge.src not in schedule.ops or edge.dst not in schedule.ops:
            continue
        if not (edge.carries_value and ddg.instruction(edge.src).defines_value):
            continue
        src_op, dst_op = schedule.ops[edge.src], schedule.ops[edge.dst]
        if src_op.cluster != dst_op.cluster:
            needed.add((edge.src, dst_op.cluster))
    served = sorted(
        pair
        for pair in needed
        if any(
            ev.producer_uid == pair[0] and ev.dst == pair[1]
            for ev in schedule.comms
        )
    )
    if not served:
        return None
    producer, cluster = _pick(rng, served)
    corrupted = _clone(schedule)
    corrupted.comms = [
        ev
        for ev in corrupted.comms
        if not (ev.producer_uid == producer and ev.dst == cluster)
    ]
    return corrupted


def corrupt_early_transfer(
    schedule: Schedule, region: Region, machine: Machine, rng: np.random.Generator
) -> Optional[Schedule]:
    """Launch one transfer a cycle before its value is produced.

    Issue and arrival shift together, so the route timing stays
    internally consistent and only the readiness rule breaks —
    guaranteed V211.

    Args:
        schedule: A legal schedule to corrupt.
        region: The region the schedule implements (unused).
        machine: The target machine (unused).
        rng: Seeded generator choosing the transfer.

    Returns:
        The corrupted schedule, or ``None`` when no transfer can be
        moved before its producer's finish without going negative.
    """
    candidates = []
    for idx, ev in enumerate(schedule.comms):
        producer = schedule.ops.get(ev.producer_uid)
        if producer is not None and producer.finish >= 1 and ev.issue >= producer.finish:
            candidates.append(idx)
    if not candidates:
        return None
    idx = _pick(rng, candidates)
    corrupted = _clone(schedule)
    ev = corrupted.comms[idx]
    producer = corrupted.ops[ev.producer_uid]
    delta = (producer.finish - 1) - ev.issue
    corrupted.comms[idx] = replace(
        ev, issue=ev.issue + delta, arrival=ev.arrival + delta
    )
    return corrupted


#: Corruption kind -> callable(schedule, region, machine, rng) that
#: returns a corrupted copy or ``None`` when the kind does not apply.
CORRUPTION_REGISTRY: Dict[
    str,
    Callable[
        [Schedule, Region, Machine, np.random.Generator], Optional[Schedule]
    ],
] = {
    "early_start": corrupt_early_start,
    "double_book": corrupt_double_book,
    "bad_cluster": corrupt_bad_cluster,
    "wrong_latency": corrupt_wrong_latency,
    "drop_transfer": corrupt_drop_transfer,
    "early_transfer": corrupt_early_transfer,
}


def corrupt_schedule(
    schedule: Schedule,
    region: Region,
    machine: Machine,
    kind: str,
    rng: np.random.Generator,
) -> Optional[Schedule]:
    """Apply one named corruption to a copy of ``schedule``.

    Args:
        schedule: A legal schedule to corrupt (never mutated).
        region: The region the schedule implements.
        machine: The target machine model.
        kind: A key of :data:`CORRUPTION_REGISTRY`.
        rng: Seeded generator behind every random choice.

    Returns:
        The corrupted schedule, or ``None`` when ``kind`` does not
        apply to this schedule.

    Raises:
        KeyError: If ``kind`` is not a registered corruption.
    """
    return CORRUPTION_REGISTRY[kind](schedule, region, machine, rng)

#!/usr/bin/env python
"""Whole-program flow: CFG -> traces -> congruence -> schedules.

The paper's compilers don't schedule isolated graphs: Rawcc "divides
each input program into one or more scheduling traces" and values live
across traces become preplaced.  This example runs that whole pipeline
on a small program with control flow:

    sum = 0
    for i in ...:               # hot loop, 90% back edge
        x = v[i]
        if x > 0:  sum += x*x   # 75% taken
        else:      sum += x
    out = sqrt(sum)

and schedules every trace region on a 2x2 Raw mesh.

Run:
    python examples/whole_program.py
"""

from repro.ir import ControlFlowGraph, Opcode, Stmt, form_traces, program_from_cfg
from repro.core import ConvergentScheduler
from repro.machine import RawMachine
from repro.sim import simulate
from repro.workloads import apply_congruence


def build_cfg() -> ControlFlowGraph:
    cfg = ControlFlowGraph("sumsq", entry="entry", inputs={"zero"})
    entry = cfg.add_block("entry")
    entry.add(Stmt("sum", Opcode.MOVE, ("zero",)))

    head = cfg.add_block("loop")
    head.add(Stmt("x", Opcode.LOAD, (), bank=0, array="v"))
    head.add(Stmt("pos", Opcode.FCMP, ("zero", "x")))

    hot = cfg.add_block("then")  # sum += x * x
    hot.add(Stmt("sq", Opcode.FMUL, ("x", "x")))
    hot.add(Stmt("sum2", Opcode.FADD, ("sum", "sq")))
    hot.add(Stmt("sum", Opcode.MOVE, ("sum2",)))

    cold = cfg.add_block("else")  # sum += x
    cold.add(Stmt("sum3", Opcode.FADD, ("sum", "x")))
    cold.add(Stmt("sum", Opcode.MOVE, ("sum3",)))

    latch = cfg.add_block("latch")
    latch.add(Stmt("t", Opcode.MOVE, ("sum",)))

    done = cfg.add_block("exit")
    done.add(Stmt("r", Opcode.FSQRT, ("sum",)))
    done.add(Stmt(None, Opcode.STORE, ("r",), bank=1, array="out"))

    cfg.add_edge("entry", "loop")
    cfg.add_edge("loop", "then", 0.75)
    cfg.add_edge("loop", "else", 0.25)
    cfg.add_edge("then", "latch")
    cfg.add_edge("else", "latch")
    cfg.add_edge("latch", "loop", 0.9)
    cfg.add_edge("latch", "exit", 0.1)
    cfg.propagate_frequencies(entry_count=1.0)
    return cfg


def main() -> None:
    cfg = build_cfg()
    print("traces (hottest first):")
    for trace in form_traces(cfg):
        freq = cfg.frequency(trace[0])
        print(f"  {' -> '.join(trace)}   (executes ~{freq:.1f}x)")

    program = program_from_cfg(cfg)
    machine = RawMachine(2, 2)
    apply_congruence(program, machine)

    total = 0
    scheduler = ConvergentScheduler()
    print(f"\nscheduling {len(program.regions)} regions on {machine.name}:")
    for region in program.regions:
        schedule = scheduler.schedule(region, machine)
        report = simulate(region, machine, schedule)
        weighted = report.cycles * region.trip_count
        total += weighted
        pins = sum(1 for i in region.ddg if i.preplaced)
        print(
            f"  {region.name:30s} {len(region.ddg):3d} instrs "
            f"({pins} preplaced)  {report.cycles:3d} cycles x {region.trip_count}"
        )
    print(f"\nestimated whole-program cycles: {total}")
    print("cross-trace values (sum, x) became preplaced pseudo-instructions,")
    print("which is exactly how the paper's preplacement constraints arise.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Figure 1: the parallelism/locality tradeoff, end to end.

Recreates the paper's opening example — three clusters, one functional
unit each, one cycle of receive latency — and compares three hand
partitionings (conservative, aggressive, careful) against what UAS and
convergent scheduling find automatically.

Run:
    python examples/tradeoff.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.test_fig1_tradeoff import (  # noqa: E402
    ThreeClusterMachine,
    figure1_region,
    schedule_with_assignment,
)
from repro.core import ConvergentScheduler  # noqa: E402
from repro.schedulers import UnifiedAssignAndSchedule  # noqa: E402
from repro.sim import simulate  # noqa: E402


def main() -> None:
    machine = ThreeClusterMachine()
    region = figure1_region()
    print(region.ddg.summary(), "\n")

    conservative = schedule_with_assignment(region, machine, {})
    aggressive = schedule_with_assignment(
        region, machine,
        {0: 0, 2: 1, 3: 0, 4: 1, 5: 0, 6: 2, 1: 2, 7: 2, 8: 1, 9: 2},
    )
    careful = schedule_with_assignment(
        region, machine,
        {0: 0, 1: 1, 2: 0, 3: 1, 4: 0, 5: 1, 6: 2, 7: 0, 8: 0, 9: 2},
    )
    print(f"(a) conservative: {conservative.makespan} cycles "
          f"({conservative.comm_count()} transfers)")
    print(f"(b) aggressive:   {aggressive.makespan} cycles "
          f"({aggressive.comm_count()} transfers)")
    print(f"(c) careful:      {careful.makespan} cycles "
          f"({careful.comm_count()} transfers)")

    uas = UnifiedAssignAndSchedule().schedule(region, machine)
    simulate(region, machine, uas)
    print(f"{'uas':>16s}: {uas.makespan} cycles ({uas.comm_count()} transfers)")

    # On a 10-instruction graph the convergent scheduler's only way to
    # break symmetry is NOISE, so the seed matters; real scheduling units
    # are far larger.  Take the best of a few seeds, as a compiler would.
    best = min(
        (ConvergentScheduler(seed=s).schedule(figure1_region(), machine)
         for s in range(4)),
        key=lambda sched: sched.makespan,
    )
    simulate(region, machine, best)
    print(f"{'convergent':>16s}: {best.makespan} cycles "
          f"({best.comm_count()} transfers, best of 4 seeds)")

    print("\ncareful schedule, cycle by cycle:")
    print(careful.render(machine.n_clusters, max_cycles=10))


if __name__ == "__main__":
    main()

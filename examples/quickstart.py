#!/usr/bin/env python
"""Quickstart: schedule a kernel with convergent scheduling.

Builds a small dot-product region, binds its memory banks to a
4-cluster VLIW via congruence analysis, runs the convergent scheduler,
validates the schedule with the simulator, and prints the space-time
schedule plus the converged cluster preference map.

Run:
    python examples/quickstart.py
"""

from repro import ClusteredVLIW, ConvergentScheduler, RegionBuilder
from repro.analysis import analyze_bottleneck
from repro.ir.regions import Program
from repro.sim import simulate
from repro.workloads import apply_congruence


def build_dot_product(n: int = 8) -> Program:
    """y = sum(a[i] * b[i]) with arrays interleaved over memory banks."""
    b = RegionBuilder("dot8")
    xs = [b.load(bank=i, name=f"a[{i}]", array="a") for i in range(n)]
    ys = [b.load(bank=i, name=f"b[{i}]", array="b") for i in range(n)]
    products = [b.fmul(x, y) for x, y in zip(xs, ys)]
    b.live_out(b.reduce(products), name="y")
    return Program("dot", [b.build()])


def main() -> None:
    machine = ClusteredVLIW(n_clusters=4)
    program = apply_congruence(build_dot_product(), machine)
    region = program.regions[0]
    print(region.ddg.summary())

    scheduler = ConvergentScheduler()
    result = scheduler.converge(region, machine)

    report = simulate(region, machine, result.schedule)
    print(f"\nschedule: {report.cycles} cycles, {report.transfers} transfers, "
          f"{report.utilization(machine):.0%} FU utilization")
    print(f"dataflow verified: {report.values_checked} values match the "
          f"reference interpreter\n")

    print("space-time schedule (cycle x cluster):")
    print(result.schedule.render(machine.n_clusters, max_cycles=24))

    print("\nconverged cluster preferences (darker = weaker):")
    print(result.matrix.render_cluster_map())

    print("\nconvergence per pass:")
    print(result.trace.render("dot8 on vliw4"))

    print("\nwhat binds this schedule?")
    print(analyze_bottleneck(region, machine, result.schedule).render())


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Down to the metal: Raw switch programs for a scheduled kernel.

Raw's static network is *programmed by the compiler*: every tile's
switch runs its own instruction stream, and the schedule is only real
once those streams exist.  This example schedules a small stencil on a
2x2 mesh, lowers the schedule's transfers into per-tile switch programs,
validates them port-by-port, and prints the whole story: the Gantt
timeline, a cycle narration, and the switch assembly.

Run:
    python examples/switch_programs.py
"""

from repro import ConvergentScheduler, RawMachine
from repro.machine import (
    generate_switch_code,
    render_switch_program,
    validate_switch_code,
)
from repro.sim import crosscheck, simulate
from repro.sim.trace import gantt, narrate
from repro.workloads import build_benchmark


def main() -> None:
    machine = RawMachine(2, 2)
    program = build_benchmark("jacobi", machine, unroll=4, banks=4)
    region = program.regions[0]
    print(region.ddg.summary())

    schedule = ConvergentScheduler().schedule(region, machine)
    report = simulate(region, machine, schedule)
    crosscheck(region, machine, schedule)  # dynamic replay agrees
    print(f"\n{report.cycles} cycles, {report.transfers} transfers, "
          f"dataflow + dynamic timing verified\n")

    print("timeline (instructions by tile, ~ = network send):")
    print(gantt(region, machine, schedule, max_cycles=20))

    print("\nfirst cycles, narrated:")
    print(narrate(region, machine, schedule, first=0, last=8))

    programs = generate_switch_code(schedule, machine)
    errors = validate_switch_code(programs, schedule, machine)
    print(f"\nswitch programs: {sum(len(ops) for ops in programs.values())} "
          f"route ops across {machine.n_clusters} tiles, "
          f"{len(errors)} violations\n")
    for tile in range(machine.n_clusters):
        if programs[tile]:
            print(render_switch_program(tile, programs[tile][:6]))
            if len(programs[tile]) > 6:
                print(f"  ... {len(programs[tile]) - 6} more ops")
            print()


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Figure 4: watching the preference map converge.

Runs the convergent scheduler over the fpppp-kernel excerpt with
snapshotting enabled and prints the cluster preference map after each
pass — the ASCII analogue of the paper's Figure 4(b)-(g), where rows
are instructions, columns are clusters, and brighter cells are stronger
preferences.

Run:
    python examples/preference_maps.py
"""

from repro import ClusteredVLIW, ConvergentScheduler
from repro.workloads import build_benchmark


def main() -> None:
    machine = ClusteredVLIW(4)
    # A small slice of fpppp so each frame fits on screen.
    program = build_benchmark("fpppp-kernel", machine, chains=6, chain_length=5)
    region = program.regions[0]
    print(region.ddg.summary(), "\n")

    scheduler = ConvergentScheduler(keep_snapshots=True)
    result = scheduler.converge(region, machine)

    # Show a band of instructions like the paper's 34-instruction excerpt.
    window = list(range(min(34, len(region.ddg))))
    for record in result.trace.records:
        if record.snapshot is None:
            continue
        print(f"--- after {record.pass_name} "
              f"(preferred cluster changed for {record.changed_fraction:.0%}) ---")
        print(record.snapshot.render_cluster_map(window))
        print()

    print(f"final schedule: {result.schedule.makespan} cycles, "
          f"{result.schedule.comm_count()} transfers")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Register pressure as a scheduling constraint.

The paper motivates convergent scheduling partly by register pressure:
exposing more ILP lengthens live ranges, and a framework should weigh
that against parallelism instead of ignoring it.  This example builds a
register-hungry region (many long-lived values meeting in a reduction),
schedules it on a machine with small register files, and compares:

* the tuned sequence as-is,
* the tuned sequence with the REGPRESS pass spliced in,
* the CARS baseline (register-aware unified scheduling),

reporting peak per-cluster pressure and the spills a linear-scan
allocator would insert.

Run:
    python examples/register_pressure.py
"""

from repro import ClusteredVLIW, ConvergentScheduler, RegionBuilder
from repro.core import TUNED_VLIW_SEQUENCE
from repro.regalloc import allocate_registers, pressure_profile
from repro.schedulers import UnifiedAssignAndSchedule
from repro.schedulers.cars import CarsScheduler
from repro.sim import simulate


def register_hungry_region(n: int = 64):
    """n long-lived constants folded by one reduction tree."""
    b = RegionBuilder("hungry")
    values = [b.li(float(i + 1)) for i in range(n)]
    b.live_out(b.reduce(values), name="sum")
    return b.build()


def report(label, region, machine, schedule):
    simulate(region, machine, schedule, check_values=False)
    profile = pressure_profile(region, machine, schedule)
    allocation = allocate_registers(region, machine, schedule)
    print(
        f"{label:22s} {schedule.makespan:4d} cycles   "
        f"peak pressure {profile.peak():3d}   "
        f"spills {allocation.spill_count:3d} "
        f"(+{allocation.spill_cost_cycles} est. cycles)"
    )


def main() -> None:
    machine = ClusteredVLIW(4, registers=6)  # deliberately starved
    print(f"machine: {machine.name} with only "
          f"{machine.clusters[0].registers} registers per cluster\n")

    baseline = ConvergentScheduler().schedule(register_hungry_region(), machine)
    report("convergent", register_hungry_region(), machine, baseline)

    augmented_sequence = list(TUNED_VLIW_SEQUENCE[:-2]) + [
        "REGPRESS(strength=6.0)",
        *TUNED_VLIW_SEQUENCE[-2:],
    ]
    augmented = ConvergentScheduler(passes=augmented_sequence).schedule(
        register_hungry_region(), machine
    )
    report("convergent + REGPRESS", register_hungry_region(), machine, augmented)

    uas = UnifiedAssignAndSchedule().schedule(register_hungry_region(), machine)
    report("uas", register_hungry_region(), machine, uas)

    cars = CarsScheduler(register_weight=12.0, threshold=0.5).schedule(
        register_hungry_region(), machine
    )
    report("cars", register_hungry_region(), machine, cars)

    print(
        "\nREGPRESS sees the whole preference distribution at once, so it "
        "spreads long-lived values before any register file overflows — "
        "fewest spills above.  The greedy schedulers decide one "
        "instruction at a time: by the time a file looks full, the "
        "long-lived values are already placed.  That is the paper's "
        "argument for cooperative, revisable decisions in one sentence."
    )


if __name__ == "__main__":
    main()

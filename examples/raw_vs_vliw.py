#!/usr/bin/env python
"""One kernel, two spatial architectures, four schedulers.

Schedules the jacobi stencil on a 4x4 Raw mesh and a 4-cluster VLIW
with every scheduler in the repository, showing how machine structure
changes both the winner and the communication behaviour:

* on Raw, memory banks are *hard* constraints and routes cost 3+ cycles,
  so preplacement dominates partitioning quality;
* on the VLIW, any cluster can reach any bank (1 cycle penalty) and
  copies cost 1 cycle, so load balance matters more than locality.

Run:
    python examples/raw_vs_vliw.py
"""

from repro import ClusteredVLIW, ConvergentScheduler, RawMachine
from repro.schedulers import (
    PartialComponentClustering,
    RawccScheduler,
    UnifiedAssignAndSchedule,
)
from repro.sim import simulate
from repro.workloads import build_benchmark


def main() -> None:
    machines = [RawMachine(4, 4), ClusteredVLIW(4)]
    schedulers = [
        ConvergentScheduler(),
        RawccScheduler(),
        UnifiedAssignAndSchedule(),
        PartialComponentClustering(),
    ]
    for machine in machines:
        program = build_benchmark("jacobi", machine)
        region = program.regions[0]
        print(f"\n=== {machine.name}: {region.ddg.summary()} ===")
        print(f"{'scheduler':12s} {'cycles':>7s} {'xfers':>6s} {'util':>6s}")
        for scheduler in schedulers:
            schedule = scheduler.schedule(region, machine)
            report = simulate(region, machine, schedule)
            print(
                f"{scheduler.name:12s} {report.cycles:7d} {report.transfers:6d} "
                f"{report.utilization(machine):6.0%}"
            )

    print(
        "\nNote how every scheduler pays more transfers on Raw (3-cycle "
        "neighbour routes, hard bank homes) than on the VLIW (1-cycle "
        "copies), and how the rankings differ between machines."
    )


if __name__ == "__main__":
    main()

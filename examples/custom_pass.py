#!/usr/bin/env python
"""Extending the convergent scheduler with a new heuristic.

Section 2 of the paper argues the framework's main virtue is that a
compiler writer can bolt on a new constraint without touching the other
heuristics: write one pass against the preference-map interface and
insert it anywhere in the sequence.

This example implements the paper's own suggestion: an architecture
that fuses a memory access with its address increment benefits from
keeping the two on one cluster.  ``PairAffinity`` pulls every (load,
address-producer) pair together.  We splice it into a sequence that
otherwise distributes work with no idea pairs exist, and count how many
pairs each schedule splits across clusters.

Run:
    python examples/custom_pass.py
"""

from repro import ClusteredVLIW, ConvergentScheduler, RegionBuilder
from repro.core import build_sequence
from repro.core.passes import PassContext, SchedulingPass
from repro.ir.regions import Program
from repro.sim import simulate
from repro.workloads import apply_congruence


class PairAffinity(SchedulingPass):
    """Keep each memory access with the instruction computing its
    address, so a post-increment machine can fuse them."""

    name = "PAIR"

    def __init__(self, boost: float = 4.0) -> None:
        self.boost = boost

    def apply(self, ctx: PassContext) -> None:
        marginals = ctx.matrix.cluster_marginals()
        for inst in ctx.ddg:
            if not inst.is_memory or not inst.operands:
                continue
            address = inst.operands[0]
            # Pull both endpoints toward the pair's strongest cluster.
            combined = marginals[inst.uid] + marginals[address]
            target = int(combined.argmax())
            ctx.matrix.scale(inst.uid, self.boost, cluster=target)
            if ctx.ddg.instruction(address).home_cluster is None:
                ctx.matrix.scale(address, self.boost, cluster=target)
        ctx.matrix.normalize()


def pointer_chains(chains: int = 4, length: int = 4) -> Program:
    """Independent pointer-chasing chains: each load's address comes
    from an increment, and the bank is unknown at compile time (so
    congruence cannot preplace the loads — exactly when PAIR helps)."""
    b = RegionBuilder("pairs")
    stride = b.li(8, name="stride")
    for c in range(chains):
        addr = b.live_in(name=f"p{c}")
        total = b.li(0.0)
        for i in range(length):
            addr = b.add(addr, stride, name=f"p{c}+{8 * (i + 1)}")
            x = b.load(address=addr, bank=None, name=f"*p{c}[{i}]", array=f"buf{c}")
            total = b.fadd(total, x)
        b.live_out(total, name=f"sum{c}")
    return Program("pairs", [b.build()])


def pair_splits(schedule, region) -> int:
    """Count (access, address) pairs split across clusters."""
    splits = 0
    for inst in region.ddg:
        if inst.is_memory and inst.operands:
            if schedule.cluster_of(inst.uid) != schedule.cluster_of(inst.operands[0]):
                splits += 1
    return splits


#: A sequence that spreads work for parallelism but knows nothing about
#: access/increment pairs.
PAIR_BLIND = ["INITTIME", "NOISE", "LOAD", "LEVEL(stride=1, granularity=0)", "EMPHCP"]


def main() -> None:
    machine = ClusteredVLIW(4)
    program = apply_congruence(pointer_chains(), machine)
    region = program.regions[0]
    total_pairs = sum(
        1 for inst in region.ddg if inst.is_memory and inst.operands
    )
    print(region.ddg.summary())

    baseline = ConvergentScheduler(passes=PAIR_BLIND).converge(region, machine)
    simulate(region, machine, baseline.schedule)

    with_pair = build_sequence(PAIR_BLIND[:-1]) + [
        PairAffinity(),
        build_sequence(PAIR_BLIND[-1:])[0],
    ]
    custom = ConvergentScheduler(passes=with_pair).converge(region, machine)
    simulate(region, machine, custom.schedule)

    print(f"\nwithout PAIR: {baseline.schedule.makespan} cycles, "
          f"{pair_splits(baseline.schedule, region)}/{total_pairs} pairs split")
    print(f"with PAIR:    {custom.schedule.makespan} cycles, "
          f"{pair_splits(custom.schedule, region)}/{total_pairs} pairs split")
    print("\nThe new heuristic needed no changes to any other pass — it "
          "only reads and nudges the shared preference map.")


if __name__ == "__main__":
    main()

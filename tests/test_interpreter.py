"""Unit tests for the reference dataflow interpreter."""

import math

import pytest

from repro.ir import Opcode, RegionBuilder
from repro.sim.interpreter import (
    evaluate_instruction,
    reference_values,
    synthetic_load_value,
)


class TestEvaluate:
    def test_arithmetic(self):
        assert evaluate_instruction(Opcode.ADD, [2.0, 3.0]) == 5.0
        assert evaluate_instruction(Opcode.FSUB, [2.0, 3.0]) == -1.0
        assert evaluate_instruction(Opcode.FMUL, [2.0, 3.0]) == 6.0

    def test_division_guards_zero(self):
        assert evaluate_instruction(Opcode.FDIV, [1.0, 0.0]) == 0.0
        assert evaluate_instruction(Opcode.DIV, [6.0, 2.0]) == 3.0

    def test_bitwise(self):
        assert evaluate_instruction(Opcode.AND, [6.0, 3.0]) == 2.0
        assert evaluate_instruction(Opcode.OR, [4.0, 1.0]) == 5.0
        assert evaluate_instruction(Opcode.XOR, [6.0, 3.0]) == 5.0

    def test_shifts_bounded(self):
        assert evaluate_instruction(Opcode.SHL, [1.0, 4.0]) == 16.0
        assert evaluate_instruction(Opcode.SHR, [16.0, 4.0]) == 1.0
        # Shift amounts reduce mod 16 to stay bounded.
        assert evaluate_instruction(Opcode.SHL, [1.0, 17.0]) == 2.0

    def test_comparisons(self):
        assert evaluate_instruction(Opcode.SLT, [1.0, 2.0]) == 1.0
        assert evaluate_instruction(Opcode.SLT, [3.0, 2.0]) == 0.0
        assert evaluate_instruction(Opcode.FCMP, [1.0, 2.0]) == 1.0

    def test_sqrt_of_negative_uses_abs(self):
        assert evaluate_instruction(Opcode.FSQRT, [-4.0]) == 2.0

    def test_li_uses_immediate(self):
        assert evaluate_instruction(Opcode.LI, [], immediate=7.5) == 7.5
        assert evaluate_instruction(Opcode.LI, []) == 0.0

    def test_load_is_deterministic_per_identity(self):
        assert synthetic_load_value(3, 1) == synthetic_load_value(3, 1)
        assert synthetic_load_value(3, 1) != synthetic_load_value(4, 1)

    def test_passthrough_ops(self):
        assert evaluate_instruction(Opcode.MOVE, [9.0]) == 9.0
        assert evaluate_instruction(Opcode.STORE, [9.0]) == 9.0
        assert evaluate_instruction(Opcode.LIVE_OUT, [9.0]) == 9.0


class TestReferenceValues:
    def test_evaluates_whole_region(self):
        b = RegionBuilder("r")
        x = b.li(2.0)
        y = b.li(3.0)
        z = b.fmul(x, y)
        w = b.fadd(z, x)
        b.live_out(w)
        region = b.build()
        values = reference_values(region.ddg)
        assert values[z.uid] == 6.0
        assert values[w.uid] == 8.0

    def test_every_instruction_valued(self):
        from .conftest import build_dot_region

        region = build_dot_region()
        values = reference_values(region.ddg)
        assert set(values) == set(range(len(region.ddg)))

    def test_live_in_deterministic(self):
        b = RegionBuilder("r")
        x = b.live_in(name="x")
        b.live_out(x)
        region = b.build()
        v1 = reference_values(region.ddg)
        v2 = reference_values(region.ddg)
        assert v1 == v2

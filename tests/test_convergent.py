"""Unit tests for the convergent scheduler driver."""

import numpy as np
import pytest

from repro.core import (
    ConvergentScheduler,
    RAW_SEQUENCE,
    TUNED_VLIW_SEQUENCE,
    VLIW_SEQUENCE,
    build_sequence,
    make_pass,
    sequence_for_machine,
)
from repro.core.passes import PASS_REGISTRY, Noise
from repro.ir import RegionBuilder
from repro.sim import simulate

from .conftest import build_dot_region


class TestSequences:
    def test_published_raw_sequence_matches_table1a(self):
        assert tuple(RAW_SEQUENCE) == (
            "INITTIME", "PLACEPROP", "LOAD", "PLACE", "PATH", "PATHPROP",
            "LEVEL", "PATHPROP", "COMM", "PATHPROP", "EMPHCP",
        )

    def test_published_vliw_sequence_matches_table1b(self):
        assert tuple(VLIW_SEQUENCE) == (
            "INITTIME", "NOISE", "FIRST", "PATH", "COMM", "PLACE",
            "PLACEPROP", "COMM", "EMPHCP",
        )

    def test_sequence_lookup_by_machine_name(self):
        assert sequence_for_machine("raw4x4", paper=True) == RAW_SEQUENCE
        assert sequence_for_machine("vliw4", paper=True) == VLIW_SEQUENCE
        assert sequence_for_machine("vliw4") == TUNED_VLIW_SEQUENCE

    def test_unknown_machine_rejected(self):
        with pytest.raises(KeyError):
            sequence_for_machine("tpu")

    def test_build_sequence_instantiates_every_pass(self):
        passes = build_sequence(RAW_SEQUENCE)
        assert [p.name for p in passes] == list(RAW_SEQUENCE)

    def test_every_registry_pass_constructs(self):
        for name in PASS_REGISTRY:
            assert make_pass(name).name == name

    def test_make_pass_with_arguments(self):
        p = make_pass("LEVEL(stride=2, granularity=1)")
        assert p.stride == 2 and p.granularity == 1
        n = make_pass("NOISE(amount=0.25)")
        assert n.amount == 0.25

    def test_make_pass_malformed_spec(self):
        with pytest.raises(ValueError):
            make_pass("LEVEL(stride=2")
        with pytest.raises(ValueError):
            make_pass("LEVEL(stride)")

    def test_make_pass_unknown_name(self):
        with pytest.raises(KeyError, match="unknown pass"):
            make_pass("WARP")


class TestDriver:
    def test_valid_schedule_on_vliw(self, vliw4, dot_region):
        result = ConvergentScheduler(check_invariants=True).converge(dot_region, vliw4)
        assert simulate(dot_region, vliw4, result.schedule).ok

    def test_valid_schedule_on_raw(self, raw4, jacobi_raw):
        result = ConvergentScheduler(check_invariants=True).converge(jacobi_raw, raw4)
        assert simulate(jacobi_raw, raw4, result.schedule).ok

    def test_assignment_respects_preplacement(self, raw4, jacobi_raw):
        result = ConvergentScheduler().converge(jacobi_raw, raw4)
        for inst in jacobi_raw.ddg:
            if inst.preplaced:
                assert result.assignment[inst.uid] == inst.home_cluster

    def test_deterministic_given_seed(self, vliw4):
        r1 = ConvergentScheduler(seed=5).converge(build_dot_region(), vliw4)
        r2 = ConvergentScheduler(seed=5).converge(build_dot_region(), vliw4)
        assert r1.assignment == r2.assignment
        assert r1.schedule.makespan == r2.schedule.makespan

    def test_different_seeds_may_differ_but_stay_valid(self, vliw4):
        region = build_dot_region(n=8)
        for seed in range(3):
            result = ConvergentScheduler(seed=seed).converge(region, vliw4)
            assert simulate(region, vliw4, result.schedule).ok

    def test_priorities_used_on_vliw_not_raw(self, vliw4, raw4):
        region_v = build_dot_region()
        result_v = ConvergentScheduler().converge(region_v, vliw4)
        assert result_v.priorities is not None
        region_r = build_dot_region()
        result_r = ConvergentScheduler().converge(region_r, raw4)
        assert result_r.priorities is None

    def test_use_preferred_times_override(self, raw4):
        result = ConvergentScheduler(use_preferred_times=True).converge(
            build_dot_region(), raw4
        )
        assert result.priorities is not None

    def test_custom_pass_objects_accepted(self, vliw4):
        scheduler = ConvergentScheduler(
            passes=["INITTIME", Noise(amount=0.5), "COMM", "EMPHCP"]
        )
        result = scheduler.converge(build_dot_region(), vliw4)
        assert simulate(build_dot_region(), vliw4, result.schedule).ok

    def test_trace_records_every_pass(self, vliw4, dot_region):
        scheduler = ConvergentScheduler()
        result = scheduler.converge(dot_region, vliw4)
        names = [r.pass_name for r in result.trace.records]
        base_names = [spec.partition("(")[0] for spec in TUNED_VLIW_SEQUENCE]
        assert names == base_names

    def test_invariants_after_every_pass(self, vliw4, mxm_vliw):
        # check_invariants=True raises inside converge() on violation.
        ConvergentScheduler(check_invariants=True).converge(mxm_vliw, vliw4)

    def test_snapshots_kept_when_requested(self, vliw4, dot_region):
        result = ConvergentScheduler(keep_snapshots=True).converge(dot_region, vliw4)
        assert result.trace.records[0].pass_name == "initial"
        assert all(
            r.snapshot is not None for r in result.trace.records
        )

    def test_scheduler_protocol_returns_schedule(self, vliw4, dot_region):
        schedule = ConvergentScheduler().schedule(dot_region, vliw4)
        assert schedule.scheduler_name == "convergent"


class TestIterativeApplication:
    """The paper's iterative-application feature: a sequence may run
    multiple times, providing feedback between phases."""

    def test_invalid_iterations_rejected(self):
        with pytest.raises(ValueError):
            ConvergentScheduler(iterations=0)

    def test_two_rounds_still_valid(self, vliw4):
        region = build_dot_region(n=8)
        result = ConvergentScheduler(iterations=2, check_invariants=True).converge(
            region, vliw4
        )
        assert simulate(region, vliw4, result.schedule).ok

    def test_inittime_runs_once(self, vliw4, dot_region):
        result = ConvergentScheduler(iterations=3).converge(dot_region, vliw4)
        names = [r.pass_name for r in result.trace.records]
        assert names.count("INITTIME") == 1

    def test_extra_rounds_reduce_churn(self, vliw4, mxm_vliw):
        result = ConvergentScheduler(iterations=2).converge(mxm_vliw, vliw4)
        series = result.trace.series()
        rounds = len(series) // 2
        first_round_peak = max(series[:rounds])
        second_round_peak = max(series[rounds:])
        assert second_round_peak <= first_round_peak

    def test_iterated_schedule_not_much_worse(self, vliw4):
        one = ConvergentScheduler(iterations=1).schedule(build_dot_region(n=12), vliw4)
        two = ConvergentScheduler(iterations=2).schedule(build_dot_region(n=12), vliw4)
        assert two.makespan <= one.makespan * 1.25


class TestGenericMachineFallback:
    def test_custom_machine_gets_generic_sequence(self):
        """A machine outside the raw*/vliw* families schedules with the
        generic sequence instead of raising."""
        from repro.core.sequences import GENERIC_SEQUENCE
        from repro.ir.opcode import FuncClass, LatencyModel
        from repro.machine.fu import Cluster, FunctionalUnit
        from repro.machine.machine import Machine

        class TinyFabric(Machine):
            memory_affinity = "soft"
            remote_mem_penalty = 0

            def __init__(self):
                classes = frozenset(
                    {FuncClass.IALU, FuncClass.IMUL, FuncClass.FPU,
                     FuncClass.MEM, FuncClass.CONST}
                )
                clusters = [
                    Cluster(index=i, units=(FunctionalUnit("u", classes),))
                    for i in range(2)
                ]
                super().__init__(clusters, LatencyModel(), "fabric2")

            def comm_latency(self, src, dst):
                return 0 if src == dst else 2

            def comm_resources(self, src, dst):
                return () if src == dst else (("bus", src, dst),)

            def distance(self, src, dst):
                return 0 if src == dst else 1

        machine = TinyFabric()
        region = build_dot_region(n=4, banks=2)
        result = ConvergentScheduler().converge(region, machine)
        assert simulate(region, machine, result.schedule).ok
        assert len(result.trace.records) == len(GENERIC_SEQUENCE)

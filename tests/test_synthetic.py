"""Unit tests for the synthetic graph families (Figure 2)."""

import pytest

from repro.analysis import graph_shape
from repro.workloads import fat_graph, layered_graph, thin_graph


class TestThinGraphs:
    def test_size_near_target(self):
        for n in (50, 200, 800):
            ddg = thin_graph(n).regions[0].ddg
            assert abs(len(ddg) - n) <= max(8, n // 10)

    def test_thin_graphs_are_thin(self):
        shape = graph_shape(thin_graph(300).regions[0].ddg)
        assert not shape.is_fat

    def test_deterministic_per_seed(self):
        a = thin_graph(100, seed=3).regions[0].ddg
        b = thin_graph(100, seed=3).regions[0].ddg
        assert len(a) == len(b) and a.edge_count() == b.edge_count()

    def test_seeds_vary_structure(self):
        a = thin_graph(100, seed=0).regions[0].ddg
        b = thin_graph(100, seed=1).regions[0].ddg
        assert (
            a.critical_path_length() != b.critical_path_length()
            or a.edge_count() != b.edge_count()
        )

    def test_valid_graph(self):
        thin_graph(150).regions[0].ddg.validate()


class TestFatGraphs:
    def test_fat_graphs_are_fat(self):
        shape = graph_shape(fat_graph(300).regions[0].ddg)
        assert shape.is_fat

    def test_fat_has_more_parallelism_than_thin(self):
        fat = graph_shape(fat_graph(300).regions[0].ddg)
        thin = graph_shape(thin_graph(300).regions[0].ddg)
        assert fat.parallelism > 2 * thin.parallelism

    def test_memory_ops_have_banks(self):
        ddg = fat_graph(100, banks=8).regions[0].ddg
        for inst in ddg:
            if inst.is_memory:
                assert 0 <= inst.bank < 8

    def test_valid_graph(self):
        fat_graph(200).regions[0].ddg.validate()


class TestLayeredGraphs:
    def test_width_controls_parallelism(self):
        narrow = graph_shape(layered_graph(300, width=2).regions[0].ddg)
        wide = graph_shape(layered_graph(300, width=16).regions[0].ddg)
        assert wide.parallelism > narrow.parallelism

    def test_size_scaling(self):
        small = layered_graph(100).regions[0].ddg
        large = layered_graph(1000).regions[0].ddg
        assert len(large) > 5 * len(small)

    def test_valid_graph(self):
        layered_graph(250, width=6).regions[0].ddg.validate()

    def test_deterministic(self):
        a = layered_graph(200, seed=9).regions[0].ddg
        b = layered_graph(200, seed=9).regions[0].ddg
        assert len(a) == len(b)

"""Unit tests for the Sarkar edge-zeroing clustering mode of the
Rawcc-style baseline."""

import pytest

from repro.ir import RegionBuilder
from repro.machine import RawMachine, raw_with_tiles
from repro.schedulers import ListScheduler, RawccScheduler
from repro.sim import simulate
from repro.workloads import build_benchmark

from .conftest import build_chain_region, build_dot_region


class TestParallelTime:
    def test_serial_chain_time(self, raw4):
        region = build_chain_region(length=4)
        ddg = region.ddg
        one_cluster = {uid: 0 for uid in range(len(ddg))}
        pt = RawccScheduler._parallel_time(ddg, one_cluster, raw4, comm_cost=3)
        # li + 4 chained fadds: bounded below by the latency chain.
        assert pt >= 1 + 4 * 4

    def test_cut_edges_pay_communication(self, raw4):
        b = RegionBuilder("r")
        x = b.li(1.0)
        y = b.fadd(x, x)
        b.live_out(y)
        region = b.build()
        same = RawccScheduler._parallel_time(
            region.ddg, {0: 0, 1: 0, 2: 0}, raw4, comm_cost=3
        )
        split = RawccScheduler._parallel_time(
            region.ddg, {0: 0, 1: 1, 2: 1}, raw4, comm_cost=3
        )
        assert split == same + 3

    def test_single_issue_serialization(self, raw4):
        region = build_dot_region(n=4, banks=1)
        ddg = region.ddg
        one = RawccScheduler._parallel_time(
            ddg, {u: 0 for u in range(len(ddg))}, raw4, comm_cost=3
        )
        spread = RawccScheduler._parallel_time(
            ddg, {u: u % 4 for u in range(len(ddg))}, raw4, comm_cost=0
        )
        # With free communication, spreading must not be slower.
        assert spread <= one


class TestSarkarClustering:
    def test_chain_stays_whole(self, raw4):
        region = build_chain_region(length=8)
        scheduler = RawccScheduler(clustering="sarkar")
        vcs = scheduler.cluster_sarkar(region.ddg, raw4, comm_cost=3)
        sizes = sorted((vc.size() for vc in vcs if vc.members), reverse=True)
        assert sizes[0] >= len(region.ddg) - 2

    def test_members_partition_graph(self, raw4, jacobi_raw):
        scheduler = RawccScheduler(clustering="sarkar")
        vcs = scheduler.cluster_sarkar(jacobi_raw.ddg, raw4, comm_cost=3)
        members = sorted(u for vc in vcs for u in vc.members)
        assert members == list(range(len(jacobi_raw.ddg)))

    def test_conflicting_homes_never_merge(self, raw4, jacobi_raw):
        scheduler = RawccScheduler(clustering="sarkar")
        vcs = scheduler.cluster_sarkar(jacobi_raw.ddg, raw4, comm_cost=3)
        for vc in vcs:
            homes = {
                jacobi_raw.ddg.instruction(u).home_cluster
                for u in vc.members
                if jacobi_raw.ddg.instruction(u).home_cluster is not None
            }
            assert len(homes) <= 1

    def test_valid_schedule_end_to_end(self, raw4, jacobi_raw):
        schedule = RawccScheduler(clustering="sarkar").schedule(jacobi_raw, raw4)
        assert simulate(jacobi_raw, raw4, schedule).ok

    def test_not_worse_than_dsc_on_integer_code(self):
        machine = raw_with_tiles(16)
        region = build_benchmark("sha", machine).regions[0]
        dsc = RawccScheduler(clustering="dsc").schedule(region, machine)
        sarkar = RawccScheduler(clustering="sarkar").schedule(region, machine)
        assert sarkar.makespan <= dsc.makespan

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            RawccScheduler(clustering="magic")

"""Live-server tests for compilation-as-a-service (:mod:`repro.serve`).

Four families, one per ISSUE satellite:

* **equivalence** — for every registered scheduler on both machine
  families, the served ``ProgramResult`` JSON is byte-identical
  (after scrubbing wall-clock fields) to a serial
  :func:`~repro.harness.experiment.run_program`, on both the cold
  and the warm path;
* **wire properties** — hypothesis round-trips over random DAG
  programs: serialization preserves the graph *including adjacency
  order* (schedulers tie-break on it), fingerprints survive the wire,
  and parsing is deterministic;
* **protocol robustness** — malformed bodies always produce a
  structured 400 (never a traceback), concurrent duplicates coalesce
  onto one compile;
* **backpressure & chaos** — queue-full and per-client 429s carry
  ``Retry-After``, dawdling clients are dropped, and a crashing
  primary scheduler degrades through a
  :class:`~repro.schedulers.fallback.FallbackChain` with zero lost
  requests (in-process and across a 2-worker pool).

Every test runs against a real socket via :class:`ServerThread`; the
HTTP side uses the loadtest helpers so the client code is exercised
too.
"""

from __future__ import annotations

import asyncio
import copy
import json
import socket
import time

import pytest
from hypothesis import given, settings

from repro.core.convergent import ConvergentScheduler
from repro.engine import schedule_key
from repro.faults.chaos import RaisingPass
from repro.harness.experiment import run_program
from repro.harness.results import program_result_to_dict
from repro.ir import Program
from repro.machine import machine_from_spec
from repro.schedulers.fallback import FallbackChain
from repro.serve import (
    ServeConfig,
    ServerThread,
    compile_request,
    parse_request,
    program_from_dict,
    program_to_dict,
)
from repro.serve.loadtest import http_request
from repro.verify.sweep import scheduler_registry
from repro.workloads import build_benchmark

from tests.test_properties_engine import build_region, dag_recipes

MACHINE_SPECS = ("raw4x4", "vliw4")
SCHEDULERS = tuple(sorted(scheduler_registry()))


# -- helpers -----------------------------------------------------------


def _call(thread, method, path, body=None, timeout_s=60.0):
    """One HTTP round-trip against a :class:`ServerThread`."""
    return asyncio.run(
        http_request(thread.host, thread.port, method, path, body, timeout_s)
    )


def _post(thread, body):
    """POST ``body`` to ``/compile``; returns ``(status, headers, payload)``."""
    return _call(thread, "POST", "/compile", body)


def _metrics(thread):
    """The decoded ``GET /metrics`` payload."""
    status, _, payload = _call(thread, "GET", "/metrics")
    assert status == 200
    return payload


def _counters(thread):
    """The server's ``serve.*`` counter map from ``GET /metrics``."""
    return _metrics(thread)["serve"]["counters"]


def _body(program, spec, scheduler, **kwargs):
    """Encoded wire body for one compile request."""
    return json.dumps(compile_request(program, spec, scheduler, **kwargs)).encode()


def _scrub(result_dict):
    """Drop wall-clock fields so serial and served results compare."""
    out = copy.deepcopy(result_dict)
    out["compile_seconds"] = 0.0
    out["metrics"] = None
    for region in out["regions"]:
        region["compile_seconds"] = 0.0
    return out


def _canon(result_dict):
    """Canonical bytes of a scrubbed result, for byte-identity checks."""
    return json.dumps(_scrub(result_dict), sort_keys=True).encode()


@pytest.fixture(scope="module")
def server():
    """One shared default-config server for the read-mostly tests."""
    with ServerThread() as thread:
        yield thread


# -- satellite 1: serial/served equivalence ----------------------------


class TestEquivalence:
    """Served results are byte-identical to serial ``run_program``."""

    @pytest.mark.parametrize("spec", MACHINE_SPECS)
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_cold_and_warm_match_serial(self, server, spec, scheduler):
        program = build_benchmark("vvmul")
        machine = machine_from_spec(spec)
        serial = run_program(
            program, machine, scheduler_registry()[scheduler](),
            check_values=False,
        )
        body = _body(program, spec, scheduler)
        cold_status, _, cold = _post(server, body)
        warm_status, _, warm = _post(server, body)
        assert cold_status == 200 and warm_status == 200
        expected = _canon(program_result_to_dict(serial))
        assert _canon(cold["result"]) == expected
        assert _canon(warm["result"]) == expected
        if serial.status == "ok":
            # Failed results are deliberately never cached, so only OK
            # cells are guaranteed to come back from the warm path.
            assert warm["served"] == "cache"

    def test_warm_lane_serves_from_schedule_cache(self, server):
        """With the response cache cleared, the warm lane rebuilds the
        identical payload from :class:`ScheduleCache` hits."""
        program = build_benchmark("fir")
        body = _body(program, "vliw4", "convergent", seed=9)
        status, _, cold = _post(server, body)
        assert status == 200
        srv = server.server
        with srv._response_lock:
            srv._response_cache.clear()
        hits_before = srv.cache.stats.hits
        status, _, warm = _post(server, body)
        assert status == 200
        assert warm["served"] == "cache"
        assert srv.cache.stats.hits > hits_before
        assert _canon(warm["result"]) == _canon(cold["result"])

    def test_every_served_task_emits_flight_records(self, server):
        payload = _metrics(server)
        result = _post(server, _body(build_benchmark("mxm"), "vliw4", "uas"))
        assert result[0] == 200
        after = _metrics(server)
        grew = after["ledger_records"] - payload["ledger_records"]
        assert grew >= len(build_benchmark("mxm").regions)


class TestTimelineOnServerLedger:
    """A flushed server ledger replays through ``repro timeline``."""

    def test_timeline_reads_flushed_ledger(self, tmp_path, capsys):
        from repro.cli import main

        ledger_path = tmp_path / "serve_flight.jsonl"
        config = ServeConfig(port=0, ledger_path=str(ledger_path))
        with ServerThread(config) as thread:
            status, _, _ = _post(
                thread, _body(build_benchmark("vvmul"), "vliw4", "convergent")
            )
            assert status == 200
        assert ledger_path.exists()
        assert main(["timeline", str(ledger_path)]) == 0
        assert "worker" in capsys.readouterr().out


# -- satellite 2: wire-schema properties -------------------------------


class TestWireProperties:
    """Hypothesis round-trips over random DAG programs."""

    @given(dag_recipes(max_nodes=16))
    @settings(max_examples=25, deadline=None)
    def test_round_trip_preserves_graph_and_adjacency_order(self, nodes):
        region = build_region(nodes, name="wire")
        program = Program("wire_prog", regions=[region])
        data = program_to_dict(program)
        back = program_from_dict(data)
        ddg, ddg2 = region.ddg, back.regions[0].ddg
        assert len(ddg) == len(ddg2)
        for uid in range(len(ddg)):
            a, b = ddg.instruction(uid), ddg2.instruction(uid)
            assert (a.opcode, tuple(a.operands)) == (b.opcode, tuple(b.operands))
            for pick in ("successors", "predecessors"):
                ours = [(e.src, e.dst, e.latency, e.kind)
                        for e in getattr(ddg, pick)(uid)]
                theirs = [(e.src, e.dst, e.latency, e.kind)
                          for e in getattr(ddg2, pick)(uid)]
                assert ours == theirs, f"{pick} order diverged at uid {uid}"
        assert json.dumps(data, sort_keys=True) == json.dumps(
            program_to_dict(back), sort_keys=True
        )

    @given(dag_recipes(max_nodes=12))
    @settings(max_examples=10, deadline=None)
    def test_fingerprint_stable_across_serialization(self, nodes):
        region = build_region(nodes, name="wirefp")
        machine = machine_from_spec("vliw4")
        back = program_from_dict(
            program_to_dict(Program("p", regions=[region]))
        ).regions[0]
        original = schedule_key(
            region, machine, ConvergentScheduler(), check_values=False
        )
        roundtrip = schedule_key(
            back, machine, ConvergentScheduler(), check_values=False
        )
        assert original.key == roundtrip.key

    @given(dag_recipes(max_nodes=12))
    @settings(max_examples=10, deadline=None)
    def test_request_parse_is_deterministic(self, nodes):
        region = build_region(nodes, name="wirereq")
        program = Program("p", regions=[region])
        registry = scheduler_registry()
        request = compile_request(program, "raw4x4", "convergent", seed=3)
        rehydrated = json.loads(json.dumps(request))
        first = parse_request(rehydrated, registry)
        second = parse_request(json.loads(json.dumps(rehydrated)), registry)
        assert first.key == second.key
        assert first.scheduler_name == "convergent"
        assert first.seed == 3


def _mutations():
    """Named malformed-request bodies; each must earn a structured 400."""
    base = compile_request(build_benchmark("vvmul"), "vliw4", "convergent")

    def mutate(**changes):
        bad = json.loads(json.dumps(base))
        bad.update(changes)
        return bad

    bad_opcode = json.loads(json.dumps(base))
    bad_opcode["program"]["regions"][0]["instructions"][0]["opcode"] = "zorp"
    bad_edge = json.loads(json.dumps(base))
    bad_edge["program"]["regions"][0]["edges"].append([0, 10_000, 1, "data"])
    bad_trip = json.loads(json.dumps(base))
    bad_trip["program"]["regions"][0]["trip_count"] = -4
    return {
        "not-json": b"{nope",
        "wrong-kind": json.dumps(mutate(kind="frobnicate")).encode(),
        "wrong-schema": json.dumps(mutate(schema=99)).encode(),
        "unknown-scheduler": json.dumps(mutate(scheduler="doom")).encode(),
        "unknown-machine": json.dumps(mutate(machine="cray1")).encode(),
        "program-not-dict": json.dumps(mutate(program=[1, 2])).encode(),
        "bool-seed": json.dumps(mutate(seed=True)).encode(),
        "bad-opcode": json.dumps(bad_opcode).encode(),
        "dangling-edge": json.dumps(bad_edge).encode(),
        "negative-trip-count": json.dumps(bad_trip).encode(),
    }


class TestProtocolRobustness:
    """Malformed input is rejected in-band; duplicates coalesce."""

    @pytest.mark.parametrize("case", sorted(_mutations()))
    def test_malformed_request_gets_structured_400(self, server, case):
        status, _, payload = _post(server, _mutations()[case])
        assert status == 400, case
        assert payload["kind"] == "error"
        error = payload["error"]
        assert error["type"] == "bad_request"
        assert "message" in error and "field" in error
        assert "Traceback" not in error["message"]

    def test_unknown_path_and_method(self, server):
        assert _call(server, "GET", "/frobnicate")[0] == 404
        assert _call(server, "GET", "/compile")[0] == 405
        assert _call(server, "GET", "/healthz")[0] == 200

    def test_concurrent_duplicates_coalesce_to_one_compile(self):
        """Six identical cold requests → one engine compile, six 200s."""
        with ServerThread() as thread:
            body = _body(build_benchmark("vvmul"), "raw4x4", "pcc")

            async def storm(n=6):
                calls = [
                    http_request(thread.host, thread.port, "POST",
                                 "/compile", body, 60.0)
                    for _ in range(n)
                ]
                return await asyncio.gather(*calls)

            replies = asyncio.run(storm())
            assert [status for status, _, _ in replies] == [200] * 6
            results = {_canon(payload["result"]) for _, _, payload in replies}
            assert len(results) == 1
            snap = _counters(thread)
            assert snap["serve.compiled"] == 1
            assert snap["serve.coalesced"] >= 1
            assert snap["serve.responses.ok"] == 6


# -- satellite 3: backpressure & chaos ---------------------------------


class TestBackpressure:
    """Overload sheds with 429 + Retry-After; dawdlers are dropped."""

    def test_queue_full_sheds_with_retry_after(self):
        config = ServeConfig(port=0, queue_limit=0, retry_after_s=2.5)
        with ServerThread(config) as thread:
            body = _body(build_benchmark("vvmul"), "vliw4", "convergent")
            status, headers, payload = _post(thread, body)
            assert status == 429
            assert headers.get("retry-after") == "2.5"
            assert payload["error"]["type"] == "shed"
            snap = _counters(thread)
            assert snap["serve.shed.queue"] == 1
            assert snap["serve.responses.shed"] == 1

    def test_per_client_limit_sheds(self):
        config = ServeConfig(port=0, client_limit=0)
        with ServerThread(config) as thread:
            body = _body(build_benchmark("vvmul"), "vliw4", "convergent")
            status, headers, payload = _post(thread, body)
            assert status == 429
            assert "retry-after" in headers
            assert payload["error"]["type"] == "shed"
            assert _counters(thread)["serve.shed.client"] == 1

    def test_slow_client_is_dropped(self):
        config = ServeConfig(port=0, read_timeout_s=0.25)
        with ServerThread(config) as thread:
            conn = socket.create_connection((thread.host, thread.port))
            try:
                conn.sendall(b"POST /compile HTTP/1.1\r\n")  # never finishes
                conn.settimeout(5.0)
                assert conn.recv(1024) == b""  # server hung up on us
            finally:
                conn.close()
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if _counters(thread).get("serve.slow_clients", 0):
                    break
                time.sleep(0.05)
            assert _counters(thread)["serve.slow_clients"] >= 1


class TestCliHardening:
    """`serve`/`loadtest` ride the hardened exit-code decorator."""

    def test_loadtest_config_error_exits_2(self, capsys):
        from repro.cli import main

        code = main(["loadtest", "--requests", "2",
                     "--benchmarks", "doom", "--no-warm"])
        assert code == 2
        assert "empty load corpus" in capsys.readouterr().err

    def test_loadtest_missing_snapshot_exits_2(self, tmp_path, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        code = main(["loadtest", "--spawn", "--requests", "2",
                     "--clients", "1", "--benchmarks", "vvmul",
                     "--machines", "vliw4", "--against-latest"])
        assert code == 2

    def test_loadtest_gate_violation_exits_1(self, capsys):
        from repro.cli import main

        code = main(["loadtest", "--spawn", "--requests", "8",
                     "--clients", "2", "--benchmarks", "vvmul",
                     "--machines", "vliw4", "--gate-p99-ms", "0.000001"])
        assert code == 1
        assert "GATE VIOLATION" in capsys.readouterr().out


def _chaotic_registry():
    """A registry whose only scheduler crashes its primary mid-pass.

    The primary is a convergent scheduler carrying an unguarded
    :class:`RaisingPass` (so the injected fault escapes); the fallback
    is a stock convergent scheduler, so a degraded request still
    produces the exact cycles a healthy convergent compile would.
    """
    return {
        "chaotic": lambda: FallbackChain(
            [
                ConvergentScheduler(
                    passes=["INITTIME", RaisingPass(), "LOAD"], guard=False
                ),
                ConvergentScheduler(),
            ],
        )
    }


class TestChaos:
    """A crashing primary degrades through the chain; nothing is lost."""

    BENCHMARKS = ("vvmul", "fir", "mxm")

    @staticmethod
    def _nameless(result_dict):
        """Scrubbed canonical bytes minus the scheduler label — the
        chain reports its own name, the wire reports the registry key,
        but the schedules themselves must be identical."""
        scrubbed = _scrub(result_dict)
        scrubbed.pop("scheduler")
        return json.dumps(scrubbed, sort_keys=True).encode()

    def _expected(self, name):
        return self._nameless(program_result_to_dict(run_program(
            build_benchmark(name), machine_from_spec("vliw4"),
            ConvergentScheduler(), check_values=False,
        )))

    def test_crashing_primary_degrades_with_zero_lost_requests(self):
        with ServerThread(registry=_chaotic_registry()) as thread:
            for name in self.BENCHMARKS:
                status, _, payload = _post(
                    thread, _body(build_benchmark(name), "vliw4", "chaotic")
                )
                assert status == 200, name
                assert payload["result"]["status"] == "ok"
                assert self._nameless(payload["result"]) == self._expected(name)
            snap = _counters(thread)
            assert snap["serve.responses.ok"] == len(self.BENCHMARKS)
            assert snap.get("serve.responses.error", 0) == 0

    def test_pool_workers_degrade_with_zero_lost_requests(self):
        """Same chaos across a 2-worker pool: the fault crashes inside
        pool workers and every request still compiles."""
        config = ServeConfig(port=0, jobs=2)
        with ServerThread(config, registry=_chaotic_registry()) as thread:
            for name in self.BENCHMARKS[:2]:
                status, _, payload = _post(
                    thread, _body(build_benchmark(name), "vliw4", "chaotic")
                )
                assert status == 200, name
                assert payload["result"]["status"] == "ok"
                assert self._nameless(payload["result"]) == self._expected(name)
            snap = _counters(thread)
            assert snap["serve.responses.ok"] == 2
            assert snap.get("serve.responses.error", 0) == 0

"""Unit tests for the CFG substrate: blocks, liveness, frequencies."""

import pytest

from repro.ir import ControlFlowGraph, Opcode, Stmt


def diamond_cfg():
    """entry -> (then | else) -> join, with a hot then-side."""
    cfg = ControlFlowGraph("diamond", entry="entry", inputs={"a"})
    entry = cfg.add_block("entry")
    entry.add(Stmt("x", Opcode.LI, immediate=1.0))
    entry.add(Stmt("c", Opcode.SLT, ("a", "x")))
    then = cfg.add_block("then")
    then.add(Stmt("y", Opcode.FADD, ("a", "x")))
    other = cfg.add_block("else")
    other.add(Stmt("y", Opcode.FSUB, ("a", "x")))
    join = cfg.add_block("join")
    join.add(Stmt(None, Opcode.STORE, ("y",), bank=0, array="out"))
    cfg.add_edge("entry", "then", 0.9)
    cfg.add_edge("entry", "else", 0.1)
    cfg.add_edge("then", "join", 1.0)
    cfg.add_edge("else", "join", 1.0)
    return cfg


class TestStmt:
    def test_store_must_not_define(self):
        with pytest.raises(ValueError):
            Stmt("x", Opcode.STORE, ("y",))

    def test_non_store_must_define(self):
        with pytest.raises(ValueError):
            Stmt(None, Opcode.FADD, ("a", "b"))

    def test_edge_probability_validated(self):
        from repro.ir.cfg import CfgEdge

        with pytest.raises(ValueError):
            CfgEdge("a", "b", probability=1.5)


class TestBlocks:
    def test_defs_and_upward_exposed_uses(self):
        cfg = diamond_cfg()
        entry = cfg.block("entry")
        assert entry.defs() == {"x", "c"}
        assert entry.upward_exposed_uses() == {"a"}

    def test_redefinition_hides_use(self):
        cfg = ControlFlowGraph("t", inputs=set())
        b = cfg.add_block("entry")
        b.add(Stmt("v", Opcode.LI, immediate=1.0))
        b.add(Stmt("w", Opcode.FADD, ("v", "v")))
        assert b.upward_exposed_uses() == set()

    def test_duplicate_block_rejected(self):
        cfg = ControlFlowGraph("t")
        cfg.add_block("entry")
        with pytest.raises(ValueError):
            cfg.add_block("entry")

    def test_edge_to_unknown_block_rejected(self):
        cfg = ControlFlowGraph("t")
        cfg.add_block("entry")
        with pytest.raises(KeyError):
            cfg.add_edge("entry", "ghost")


class TestLiveness:
    def test_diamond_liveness(self):
        cfg = diamond_cfg()
        live_in, live_out = cfg.liveness()
        assert "y" in live_out["then"]
        assert "y" in live_out["else"]
        assert "y" in live_in["join"]
        assert "a" in live_in["entry"]  # the input
        assert "y" not in live_out["join"]  # dead after the store

    def test_loop_liveness_fixpoint(self):
        cfg = ControlFlowGraph("loop", inputs={"n"})
        entry = cfg.add_block("entry")
        entry.add(Stmt("acc", Opcode.LI, immediate=0.0))
        body = cfg.add_block("body")
        body.add(Stmt("acc2", Opcode.FADD, ("acc", "n")))
        body.add(Stmt("acc", Opcode.MOVE, ("acc2",)))
        exit_b = cfg.add_block("exit")
        exit_b.add(Stmt(None, Opcode.STORE, ("acc",), bank=0, array="o"))
        cfg.add_edge("entry", "body")
        cfg.add_edge("body", "body", 0.9)
        cfg.add_edge("body", "exit", 0.1)
        live_in, live_out = cfg.liveness()
        # acc is live around the back edge.
        assert "acc" in live_in["body"]
        assert "acc" in live_out["body"]

    def test_validate_catches_undefined_variable(self):
        cfg = ControlFlowGraph("bad")
        entry = cfg.add_block("entry")
        entry.add(Stmt("y", Opcode.FADD, ("ghost", "ghost")))
        with pytest.raises(ValueError, match="used before definition"):
            cfg.validate()

    def test_validate_accepts_inputs(self):
        diamond_cfg().validate()

    def test_validate_checks_probability_mass(self):
        cfg = ControlFlowGraph("bad", inputs=set())
        cfg.add_block("entry")
        cfg.add_block("a")
        cfg.add_edge("entry", "a", 0.9)
        cfg.add_edge("entry", "a", 0.9)
        with pytest.raises(ValueError, match="probabilities"):
            cfg.validate()

    def test_validate_missing_entry(self):
        cfg = ControlFlowGraph("bad", entry="nope")
        with pytest.raises(ValueError, match="entry"):
            cfg.validate()


class TestFrequencies:
    def test_explicit_frequency(self):
        cfg = diamond_cfg()
        cfg.set_frequency("then", 90)
        assert cfg.frequency("then") == 90
        assert cfg.frequency("else") == 1.0  # default

    def test_propagation_splits_by_probability(self):
        cfg = diamond_cfg()
        cfg.propagate_frequencies(entry_count=100)
        assert cfg.frequency("then") == pytest.approx(90)
        assert cfg.frequency("else") == pytest.approx(10)
        assert cfg.frequency("join") == pytest.approx(100)

    def test_loop_frequency_converges(self):
        cfg = ControlFlowGraph("loop", inputs=set())
        cfg.add_block("entry")
        cfg.add_block("body")
        cfg.add_block("exit")
        cfg.add_edge("entry", "body")
        cfg.add_edge("body", "body", 0.5)
        cfg.add_edge("body", "exit", 0.5)
        cfg.propagate_frequencies(entry_count=1.0)
        # Geometric series: body executes ~2 times per entry.
        assert cfg.frequency("body") == pytest.approx(2.0, rel=1e-3)

    def test_negative_frequency_rejected(self):
        cfg = diamond_cfg()
        with pytest.raises(ValueError):
            cfg.set_frequency("then", -1)

"""Unit tests for result serialization round-trips."""

import pytest

from repro.harness.convergence import ConvergenceStudy
from repro.harness.results import (
    convergence_study_from_dict,
    load_result,
    save_result,
    scaling_result_from_dict,
    speedup_table_from_dict,
    speedup_table_to_dict,
)
from repro.harness.scaling import ScalingResult
from repro.harness.speedup import SpeedupTable


def sample_table():
    table = SpeedupTable(sizes=(4, 16))
    table.baseline_cycles = {"mxm": 500}
    table.speedups = {"mxm": {"convergent": {4: 4.0, 16: 8.0}, "rawcc": {4: 2.5, 16: 6.8}}}
    return table


def sample_study():
    study = ConvergenceStudy(machine_name="raw4x4")
    study.pass_names = ["PLACEPROP", "COMM"]
    study.series = {"mxm": [0.5, 0.0]}
    return study


def sample_scaling():
    result = ScalingResult(sizes=(50, 100))
    result.seconds = {"pcc": {50: 0.01, 100: 0.05}, "uas": {50: 0.002, 100: 0.004}}
    return result


class TestRoundTrips:
    def test_speedup_table(self, tmp_path):
        path = tmp_path / "t.json"
        save_result(sample_table(), path)
        loaded = load_result(path)
        assert isinstance(loaded, SpeedupTable)
        assert loaded.speedups["mxm"]["convergent"][16] == 8.0
        assert loaded.baseline_cycles["mxm"] == 500
        assert tuple(loaded.sizes) == (4, 16)

    def test_convergence_study(self, tmp_path):
        path = tmp_path / "c.json"
        save_result(sample_study(), path)
        loaded = load_result(path)
        assert isinstance(loaded, ConvergenceStudy)
        assert loaded.series["mxm"] == [0.5, 0.0]
        assert loaded.pass_names == ["PLACEPROP", "COMM"]

    def test_scaling_result(self, tmp_path):
        path = tmp_path / "s.json"
        save_result(sample_scaling(), path)
        loaded = load_result(path)
        assert isinstance(loaded, ScalingResult)
        assert loaded.seconds["pcc"][100] == 0.05
        assert loaded.growth_factor("uas") == pytest.approx(2.0)

    def test_loaded_table_renders(self, tmp_path):
        path = tmp_path / "t.json"
        save_result(sample_table(), path)
        text = load_result(path).render("roundtrip")
        assert "mxm" in text

    def test_wrong_kind_rejected(self):
        with pytest.raises(ValueError):
            speedup_table_from_dict({"kind": "nope"})
        with pytest.raises(ValueError):
            convergence_study_from_dict({"kind": "nope"})
        with pytest.raises(ValueError):
            scaling_result_from_dict({"kind": "nope"})

    def test_unserializable_type_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_result(object(), tmp_path / "x.json")

    def test_unknown_file_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"kind": "martian"}')
        with pytest.raises(ValueError):
            load_result(path)

    def test_dict_is_json_safe(self):
        import json

        json.dumps(speedup_table_to_dict(sample_table()))

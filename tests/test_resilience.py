"""Resilience layer: deadlines, retries, breakers, crash-safe caching.

Unit coverage for :mod:`repro.engine.resilience` plus the seams it is
woven through: the convergent driver's cooperative budget checks, the
pass guard's deadline re-raise, the fallback chain's routing floor, the
checksummed/quarantining disk cache, the deadline-aware fingerprint,
the harness's ``timeout`` status, and the hardened CLI verbs.  The
at-scale behavior (waves, kills, respawns) lives in
``tests/test_engine.py`` and ``benchmarks/test_engine_stress.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import EXIT_CONFIG, EXIT_FAILURE, EXIT_OK, main
from repro.core import ConvergentScheduler
from repro.engine import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    BreakerBoard,
    Budget,
    CircuitBreaker,
    DeadlineExceeded,
    ResilienceConfig,
    RetryPolicy,
    ScheduleCache,
    active_budget,
    budget_scope,
    schedule_key,
)
from repro.faults import (
    TIMING_FAULT_REGISTRY,
    HangingPass,
    SlowPass,
    make_fault,
)
from repro.harness import run_program
from repro.harness.experiment import STATUS_TIMEOUT
from repro.ir import RegionBuilder
from repro.ir.regions import Program
from repro.machine import ClusteredVLIW
from repro.observability.metrics import RESILIENCE_COUNTERS, MetricsRegistry
from repro.schedulers import (
    FallbackChain,
    SingleClusterScheduler,
    UnifiedAssignAndSchedule,
)

MACHINE = ClusteredVLIW(4)


def _region(name="rsl", n=10):
    """A small synthetic region with a real dependence structure."""
    b = RegionBuilder(name)
    values = [b.li(1.0), b.li(2.0)]
    for _ in range(n):
        values.append(b.fadd(values[-1], values[-2]))
    b.live_out(values[-1])
    return b.build()


def _expired_budget():
    """A budget that was already overspent before it was created."""
    return Budget(deadline_s=0.05, started=-1e9)


class TestBudget:
    def test_fresh_budget_is_not_expired(self):
        budget = Budget(deadline_s=60.0)
        assert not budget.expired
        assert budget.remaining() > 0
        budget.check("anywhere")  # must not raise

    def test_expired_budget_checks_raise_with_location(self):
        budget = _expired_budget()
        assert budget.expired
        assert budget.remaining() < 0
        with pytest.raises(DeadlineExceeded, match="pass COMM"):
            budget.check("pass COMM")

    def test_scope_installs_and_restores(self):
        assert active_budget() is None
        outer = Budget(deadline_s=60.0)
        inner = Budget(deadline_s=1.0)
        with budget_scope(outer):
            assert active_budget() is outer
            with budget_scope(inner):
                assert active_budget() is inner
            assert active_budget() is outer
        assert active_budget() is None

    def test_scope_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with budget_scope(Budget(deadline_s=60.0)):
                raise RuntimeError("boom")
        assert active_budget() is None


class TestRetryPolicy:
    def test_backoff_is_deterministic_and_grows(self):
        policy = RetryPolicy(base_delay_s=0.1, multiplier=2.0, jitter=0.5)
        d2 = policy.delay_for(2, key="regionA")
        d3 = policy.delay_for(3, key="regionA")
        assert d2 == policy.delay_for(2, key="regionA")
        assert 0.1 <= d2 <= 0.15
        assert 0.2 <= d3 <= 0.3
        assert policy.delay_for(2, key="regionB") != d2  # jitter varies by key

    def test_zero_base_delay_disables_sleeping(self):
        assert RetryPolicy(base_delay_s=0.0).delay_for(5, key="x") == 0.0

    def test_classification(self):
        policy = RetryPolicy()
        assert policy.is_retryable(EOFError())
        assert policy.is_retryable(BrokenPipeError())
        assert policy.is_retryable(OSError("pipe"))
        assert not policy.is_retryable(DeadlineExceeded("late"))
        assert not policy.is_retryable(ValueError("bad schedule"))
        broken = type("BrokenProcessPool", (RuntimeError,), {})()
        assert policy.is_retryable(broken)

    def test_max_attempts_validated(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures_only(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_tasks=2)
        breaker.record(False)
        breaker.record(False)
        breaker.record(True)  # success resets the streak
        breaker.record(False)
        breaker.record(False)
        assert breaker.state == BREAKER_CLOSED
        breaker.record(False)
        assert breaker.state == BREAKER_OPEN
        assert breaker.trips == 1

    def test_open_routes_then_probes_then_resets(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_tasks=2)
        breaker.record(False)
        assert breaker.state == BREAKER_OPEN
        assert breaker.route() == 1  # cooldown task 1: routed
        assert breaker.route() == 0  # cooldown exhausted: probe
        assert breaker.state == BREAKER_HALF_OPEN
        assert breaker.probes == 1
        breaker.record(True)
        assert breaker.state == BREAKER_CLOSED
        assert breaker.resets == 1

    def test_failed_probe_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_tasks=1)
        breaker.record(False)
        assert breaker.route() == 0  # immediate probe (cooldown 1)
        breaker.record(False)
        assert breaker.state == BREAKER_OPEN
        assert breaker.trips == 2

    def test_board_keys_cells_independently(self):
        board = BreakerBoard(failure_threshold=1, cooldown_tasks=1)
        one = board.breaker("fallback", "vliw4")
        two = board.breaker("fallback", "raw4x4")
        assert one is board.breaker("fallback", "vliw4")
        assert one is not two
        one.record(False)
        assert board.total_trips == 1
        assert board.snapshot() == {
            "fallback@raw4x4": BREAKER_CLOSED,
            "fallback@vliw4": BREAKER_OPEN,
        }


class TestCooperativeDeadline:
    def test_bare_convergent_raises_between_passes(self):
        region = _region("deadline_bare")
        with budget_scope(_expired_budget()):
            with pytest.raises(DeadlineExceeded):
                ConvergentScheduler(seed=0).schedule(region, MACHINE)

    def test_guard_does_not_swallow_the_deadline(self):
        region = _region("deadline_guarded")
        scheduler = ConvergentScheduler(seed=0, guard=True)
        with budget_scope(_expired_budget()):
            with pytest.raises(DeadlineExceeded):
                scheduler.schedule(region, MACHINE)

    def test_fallback_chain_absorbs_into_degradation(self):
        region = _region("deadline_chain")
        chain = FallbackChain(
            [
                ConvergentScheduler(seed=0),
                UnifiedAssignAndSchedule(),
                SingleClusterScheduler(),
            ]
        )
        with budget_scope(_expired_budget()):
            schedule = chain.schedule(region, MACHINE)
        assert schedule is not None
        assert chain.last_level == 1
        assert "DeadlineExceeded" in chain.last_report.attempts[0].error

    def test_hanging_pass_is_interrupted_by_the_budget(self):
        region = _region("deadline_hang")
        passes = [HangingPass(hang_s=30.0)]
        scheduler = ConvergentScheduler(passes=passes, seed=0)
        with budget_scope(Budget(deadline_s=0.05)):
            with pytest.raises(DeadlineExceeded):
                scheduler.schedule(region, MACHINE)

    def test_unbudgeted_hanging_pass_exits_after_hang_s(self):
        region = _region("deadline_nohang")
        scheduler = ConvergentScheduler(
            passes=[HangingPass(hang_s=0.02)], seed=0
        )
        assert scheduler.schedule(region, MACHINE) is not None


class TestTimingFaultRegistry:
    def test_timing_kinds_live_apart_from_the_frozen_registry(self):
        from repro.faults import FAULT_REGISTRY

        assert sorted(FAULT_REGISTRY) == ["nan", "negative", "raise", "zero_row"]
        assert sorted(TIMING_FAULT_REGISTRY) == ["hang", "slow"]
        assert isinstance(make_fault("slow"), SlowPass)
        assert isinstance(make_fault("hang"), HangingPass)
        with pytest.raises(KeyError, match="hang"):
            make_fault("nonsense")


class TestChainRoutingFloor:
    def test_min_level_skips_members_and_records_it(self):
        region = _region("routed")
        chain = FallbackChain(
            [
                ConvergentScheduler(seed=0),
                UnifiedAssignAndSchedule(),
                SingleClusterScheduler(),
            ],
            min_level=1,
        )
        schedule = chain.schedule(region, MACHINE)
        assert schedule is not None
        assert chain.last_level == 1
        first = chain.last_report.attempts[0]
        assert not first.ok and "circuit open" in first.error

    def test_min_level_validated(self):
        with pytest.raises(ValueError):
            FallbackChain([UnifiedAssignAndSchedule()], min_level=-1)


class TestDeadlineFingerprint:
    def test_deadline_changes_the_key_only_when_set(self):
        region = _region("fp")
        scheduler = UnifiedAssignAndSchedule()
        plain = schedule_key(region, MACHINE, scheduler)
        same = schedule_key(region, MACHINE, scheduler, deadline_s=None)
        budgeted = schedule_key(region, MACHINE, scheduler, deadline_s=0.25)
        other = schedule_key(region, MACHINE, scheduler, deadline_s=0.5)
        assert plain.key == same.key  # legacy keys unchanged
        assert budgeted.key != plain.key
        assert budgeted.key != other.key

    def test_min_level_changes_the_chain_key(self):
        region = _region("fp_chain")
        plain = schedule_key(
            region, MACHINE, FallbackChain([UnifiedAssignAndSchedule()])
        )
        routed = schedule_key(
            region,
            MACHINE,
            FallbackChain([UnifiedAssignAndSchedule()], min_level=0),
        )
        floor = schedule_key(
            region,
            MACHINE,
            FallbackChain(
                [SingleClusterScheduler(), UnifiedAssignAndSchedule()],
                min_level=1,
            ),
        )
        assert plain.key == routed.key
        assert floor.key != plain.key


def _put_entry(cache, region):
    """Schedule ``region`` with UAS and store it; returns the key."""
    scheduler = UnifiedAssignAndSchedule()
    schedule = scheduler.schedule(region, MACHINE)
    key = schedule_key(region, MACHINE, scheduler)
    cache.put(
        key,
        schedule,
        cycles=11,
        transfers=2,
        utilization=0.5,
        comm_busy=1,
        compile_seconds=0.01,
    )
    return key


class TestCrashSafeCache:
    def test_disk_entries_are_checksummed_wrappers(self, tmp_path):
        cache = ScheduleCache(disk_dir=tmp_path)
        region = _region("wrap")
        _put_entry(cache, region)
        files = list(tmp_path.glob("*.json"))
        assert len(files) == 1
        wrapper = json.loads(files[0].read_text())
        assert wrapper["kind"] == "schedule_cache_file"
        assert wrapper["file_version"] == 1
        assert len(wrapper["sha256"]) == 64

    def test_corrupt_file_is_a_quarantined_miss(self, tmp_path):
        region = _region("corrupt")
        key = _put_entry(ScheduleCache(disk_dir=tmp_path), region)
        victim = next(tmp_path.glob("*.json"))
        victim.write_text(victim.read_text()[: len(victim.read_text()) // 2])
        fresh = ScheduleCache(disk_dir=tmp_path)
        assert fresh.get(key, region) is None
        assert fresh.stats.corrupt == 1
        assert fresh.stats.quarantined == 1
        assert not victim.exists()
        assert len(list((tmp_path / "quarantine").iterdir())) == 1
        # The poisoned slot is writable again and then hits.
        _put_entry(fresh, region)
        assert fresh.get(key, region) is not None

    def test_bitflip_fails_the_checksum(self, tmp_path):
        region = _region("bitflip")
        key = _put_entry(ScheduleCache(disk_dir=tmp_path), region)
        victim = next(tmp_path.glob("*.json"))
        raw = bytearray(victim.read_bytes())
        raw[len(raw) // 2] ^= 0x20
        victim.write_bytes(bytes(raw))
        fresh = ScheduleCache(disk_dir=tmp_path)
        assert fresh.get(key, region) is None
        assert fresh.stats.corrupt == 1

    def test_verify_disk_buckets_and_rebuild(self, tmp_path):
        cache = ScheduleCache(disk_dir=tmp_path)
        regions = [_region(f"vrfy{i}") for i in range(3)]
        for region in regions:
            _put_entry(cache, region)
        files = sorted(tmp_path.glob("*.json"))
        files[0].write_text("garbage{")
        files[1].write_text(
            files[1].read_text().replace('"file_version": 1', '"file_version": 99')
        )
        report = ScheduleCache(disk_dir=tmp_path).verify_disk()
        assert report["checked"] == 3
        assert report["ok"] == 1
        assert report["corrupt"] == 1
        assert report["version_skew"] == 1

    def test_stats_and_gc(self, tmp_path):
        cache = ScheduleCache(disk_dir=tmp_path)
        region = _region("gc")
        key = _put_entry(cache, region)
        (tmp_path / ".stale-partial.tmp").write_text("partial")
        next(tmp_path.glob("*.json")).write_text("torn")
        fresh = ScheduleCache(disk_dir=tmp_path)
        assert fresh.get(key, region) is None  # quarantines the torn file
        stats = fresh.disk_stats()
        assert stats["entries"] == 0
        assert stats["quarantined"] == 1
        assert stats["tmp_files"] == 1
        removed = fresh.gc()
        assert removed == {"quarantine_removed": 1, "tmp_removed": 1}
        assert fresh.disk_stats() == {
            "entries": 0, "bytes": 0, "quarantined": 0, "tmp_files": 0,
        }


class TestHarnessIntegration:
    def test_timeout_status_and_counters(self):
        program = Program("timeoutp", [_region("to_r0"), _region("to_r1")])
        registry = MetricsRegistry()
        result = run_program(
            program,
            MACHINE,
            ConvergentScheduler(seed=0),
            check_values=False,
            capture_errors=True,
            registry=registry,
            resilience=ResilienceConfig(deadline_s=1e-9),
        )
        assert not result.ok
        assert all(r.status == STATUS_TIMEOUT for r in result.regions)
        assert all("DeadlineExceeded" in r.error for r in result.regions)
        counters = registry.counters
        assert counters["regions.timeout"] == 2
        assert counters["resilience.timeouts"] == 2

    def test_chain_degrades_instead_of_timing_out(self):
        program = Program("degradep", [_region("dg_r0")])
        chain = FallbackChain(
            [
                ConvergentScheduler(
                    passes=[SlowPass(delay_s=0.2)], seed=0
                ),
                UnifiedAssignAndSchedule(),
                SingleClusterScheduler(),
            ]
        )
        registry = MetricsRegistry()
        result = run_program(
            program,
            MACHINE,
            chain,
            check_values=False,
            registry=registry,
            resilience=ResilienceConfig(deadline_s=0.05),
        )
        assert result.ok
        assert registry.counters.get("resilience.timeouts", 0) == 0

    def test_resilience_counter_names_are_registered(self):
        assert "resilience.retries" in RESILIENCE_COUNTERS
        assert "resilience.breaker_trips" in RESILIENCE_COUNTERS
        assert len(set(RESILIENCE_COUNTERS)) == len(RESILIENCE_COUNTERS)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ResilienceConfig(deadline_s=0.0)
        with pytest.raises(ValueError):
            ResilienceConfig(kill_tolerance_s=-1.0)
        with pytest.raises(ValueError):
            ResilienceConfig(max_pool_respawns=-1)


class TestHardenedCli:
    def test_cache_stats_verify_gc_round_trip(self, tmp_path, capsys):
        cache = ScheduleCache(disk_dir=tmp_path)
        _put_entry(cache, _region("cli"))
        assert main(["cache", "stats", "--dir", str(tmp_path)]) == EXIT_OK
        assert main(["cache", "verify", "--dir", str(tmp_path)]) == EXIT_OK
        next(tmp_path.glob("*.json")).write_text("torn{")
        assert main(["cache", "verify", "--dir", str(tmp_path)]) == EXIT_FAILURE
        assert main(["cache", "gc", "--dir", str(tmp_path)]) == EXIT_OK
        out = capsys.readouterr().out
        assert "1 entries" in out and "quarantined" in out

    def test_missing_cache_dir_is_a_config_error(self, tmp_path, capsys):
        missing = str(tmp_path / "nope")
        assert main(["cache", "stats", "--dir", missing]) == EXIT_CONFIG
        assert "no such cache directory" in capsys.readouterr().err

    def test_bad_machine_spec_is_a_config_error(self, capsys):
        code = main(["resilience", "--machine", "bogus", "--regions", "2"])
        assert code == EXIT_CONFIG
        assert "unknown machine" in capsys.readouterr().err

    def test_faults_fail_fast_flag_parses(self, capsys):
        code = main([
            "faults", "--machine", "vliw4", "--benchmarks", "vvmul",
            "--trials", "4", "--fail-fast",
        ])
        assert code == EXIT_OK
        assert "campaign" in capsys.readouterr().out

    def test_small_resilience_storm_through_cli(self, tmp_path, capsys):
        code = main([
            "resilience", "--regions", "12", "--jobs", "2",
            "--deadline", "0.3", "--seed", "3",
            "--cache-dir", str(tmp_path / "storm-cache"),
        ])
        assert code == EXIT_OK
        assert "verdict:             OK" in capsys.readouterr().out


class TestFailFastCampaign:
    def test_fail_fast_runs_everything_when_nothing_crashes(self):
        from repro.faults import run_campaign

        report = run_campaign(
            MACHINE,
            [_region("ff")],
            n_trials=12,
            seed=0,
            guarded_fraction=0.0,
            fault_kinds=["raise"],
            jobs=1,
            fail_fast=True,
        )
        # The chain absorbs every injected raise, so fail-fast must run
        # the full campaign and report it untruncated.
        assert report.ok
        assert report.n_trials == 12
        assert not report.truncated
        assert "[truncated: fail-fast]" not in report.render()

    def test_truncated_report_is_marked_in_the_render(self):
        from repro.faults import CampaignReport

        report = CampaignReport(machine_name="vliw4", seed=0, truncated=True)
        assert "[truncated: fail-fast]" in report.render()

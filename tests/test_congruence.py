"""Unit tests for congruence analysis / preplacement binding."""

import pytest

from repro.ir import Opcode, RegionBuilder
from repro.ir.regions import Program
from repro.machine import ClusteredVLIW, RawMachine
from repro.workloads import apply_congruence, clear_preplacement


def two_region_program():
    b1 = RegionBuilder("r1")
    x = b1.load(bank=5, array="a")
    b1.live_out(x, name="x")
    b2 = RegionBuilder("r2")
    y = b2.live_in(name="x")
    b2.store(y, bank=2, array="out")
    return Program("p", [b1.build(), b2.build()])


class TestBankBinding:
    def test_memory_homes_follow_bank_interleave(self, vliw4):
        program = two_region_program()
        apply_congruence(program, vliw4)
        load = program.regions[0].ddg.instruction(0)
        assert load.home_cluster == 5 % 4

    def test_raw_binding_differs_by_mesh_size(self):
        p1 = apply_congruence(two_region_program(), RawMachine(2, 2))
        p2 = apply_congruence(two_region_program(), RawMachine(4, 4))
        assert p1.regions[0].ddg.instruction(0).home_cluster == 1  # 5 % 4
        assert p2.regions[0].ddg.instruction(0).home_cluster == 5  # 5 % 16

    def test_non_memory_untouched(self, vliw4):
        b = RegionBuilder("r")
        x = b.li(1.0)
        b.live_out(b.fadd(x, x))
        program = Program("p", [b.build()])
        apply_congruence(program, vliw4)
        assert program.regions[0].ddg.instruction(x.uid).home_cluster is None


class TestCrossRegionValues:
    def test_vliw_live_values_go_to_first_cluster(self, vliw4):
        program = two_region_program()
        apply_congruence(program, vliw4)
        region2 = program.regions[1]
        live_in = region2.ddg.instruction(region2.live_ins()[0])
        assert live_in.home_cluster == 0
        region1 = program.regions[0]
        live_out = region1.ddg.instruction(region1.live_outs()[0])
        assert live_out.home_cluster == 0

    def test_raw_live_values_round_robin(self, raw4):
        b = RegionBuilder("r")
        ins = [b.live_in(name=f"v{i}") for i in range(6)]
        for v in ins:
            b.live_out(v)
        program = Program("p", [b.build()])
        apply_congruence(program, raw4)
        homes = [
            program.regions[0].ddg.instruction(u).home_cluster
            for u in program.regions[0].live_ins()
        ]
        assert set(homes) == {0, 1, 2, 3}  # spread over all tiles

    def test_explicit_home_preserved(self, vliw4):
        b = RegionBuilder("r")
        x = b.live_in(name="x", home_cluster=3)
        b.live_out(x)
        program = Program("p", [b.build()])
        apply_congruence(program, vliw4)
        assert program.regions[0].ddg.instruction(x.uid).home_cluster == 3


class TestClearPreplacement:
    def test_clears_every_home(self, vliw4):
        program = two_region_program()
        apply_congruence(program, vliw4)
        clear_preplacement(program)
        for region in program.regions:
            assert region.ddg.preplaced() == []

    def test_returns_program_for_chaining(self, vliw4):
        program = two_region_program()
        assert apply_congruence(program, vliw4) is program
        assert clear_preplacement(program) is program

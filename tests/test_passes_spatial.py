"""Unit tests for PATH, COMM, PLACEPROP, and LOAD."""

import numpy as np
import pytest

from repro.core import PreferenceMatrix
from repro.core.passes import (
    CommunicationMinimize,
    CriticalPathStrengthen,
    LoadBalance,
    PassContext,
    Place,
    PreplacementPropagate,
    expected_cluster_load,
)
from repro.ir import RegionBuilder
from repro.ir.regions import Program
from repro.workloads import apply_congruence


def make_ctx(region, machine, seed=0):
    matrix = PreferenceMatrix.for_region(region.ddg, machine.n_clusters)
    return PassContext(
        ddg=region.ddg, machine=machine, matrix=matrix,
        rng=np.random.default_rng(seed),
    )


class TestPath:
    def test_critical_path_lands_on_one_cluster(self, vliw4):
        b = RegionBuilder("r")
        v = b.live_in(name="v")
        for _ in range(5):
            v = b.fmul(v, v)
        b.live_out(v)
        region = b.build()
        ctx = make_ctx(region, vliw4)
        CriticalPathStrengthen().apply(ctx)
        path = region.ddg.critical_path()
        clusters = {ctx.matrix.preferred_cluster(i) for i in path}
        assert len(clusters) == 1

    def test_path_with_bias_follows_bias(self, vliw4):
        b = RegionBuilder("r")
        v = b.live_in(name="v")
        for _ in range(4):
            v = b.fmul(v, v)
        b.live_out(v)
        region = b.build()
        ctx = make_ctx(region, vliw4)
        path = region.ddg.critical_path()
        for uid in path:
            ctx.matrix.scale(uid, 2.0, cluster=3)
        ctx.matrix.normalize()
        CriticalPathStrengthen().apply(ctx)
        assert all(ctx.matrix.preferred_cluster(i) == 3 for i in path)

    def test_path_splits_at_conflicting_preplacement(self, vliw4):
        b = RegionBuilder("r")
        head = b.live_in(name="h", home_cluster=1)
        mid = b.fmul(head, head)
        mid2 = b.fmul(mid, mid)
        tail = b.live_out(mid2, home_cluster=3)
        region = b.build()
        ctx = make_ctx(region, vliw4)
        CriticalPathStrengthen().apply(ctx)
        # The head half leans to cluster 1, the tail half to cluster 3.
        assert ctx.matrix.preferred_cluster(head.uid) == 1
        assert ctx.matrix.preferred_cluster(tail.uid) == 3

    def test_unbiased_path_goes_to_least_loaded(self, vliw4):
        b = RegionBuilder("r")
        v = b.live_in(name="v")
        for _ in range(3):
            v = b.fmul(v, v)
        b.live_out(v)
        region = b.build()
        ctx = make_ctx(region, vliw4)
        # Load up clusters 0-2 with background mass.
        ctx.matrix.data[:, :3, :] *= 1.5
        ctx.matrix.touch()
        ctx.matrix.normalize()
        CriticalPathStrengthen(bias_ratio=10.0).apply(ctx)
        path = region.ddg.critical_path()
        assert all(ctx.matrix.preferred_cluster(i) == 3 for i in path)

    def test_empty_graph_noop(self, vliw4):
        b = RegionBuilder("empty")
        b.li(1.0)
        region = b.build()
        ctx = make_ctx(region, vliw4)
        CriticalPathStrengthen().apply(ctx)  # must not raise


class TestComm:
    def test_pulls_consumer_to_producer(self, vliw4):
        b = RegionBuilder("r")
        x = b.live_in(name="x")
        y = b.fadd(x, x)
        b.live_out(y)
        region = b.build()
        ctx = make_ctx(region, vliw4)
        ctx.matrix.scale(x.uid, 50.0, cluster=2)
        ctx.matrix.normalize()
        CommunicationMinimize().apply(ctx)
        assert ctx.matrix.preferred_cluster(y.uid) == 2

    def test_grandparents_influence_when_enabled(self, vliw4):
        b = RegionBuilder("r")
        x = b.live_in(name="x")
        mid = b.fadd(x, x)
        top = b.fadd(mid, mid)
        b.live_out(top)
        region = b.build()
        ctx = make_ctx(region, vliw4)
        ctx.matrix.scale(x.uid, 100.0, cluster=1)
        ctx.matrix.normalize()
        CommunicationMinimize(include_grand=True, sharpen=1.0).apply(ctx)
        # top is two hops from x and should still feel the pull.
        marg = ctx.matrix.cluster_marginals()[top.uid]
        assert marg[1] == max(marg)

    def test_isolated_instruction_unchanged(self, vliw4):
        b = RegionBuilder("r")
        lone = b.li(3.0)
        x = b.live_in()
        b.live_out(b.fadd(x, x))
        region = b.build()
        ctx = make_ctx(region, vliw4)
        before = ctx.matrix.data[lone.uid].copy()
        CommunicationMinimize(sharpen=1.0).apply(ctx)
        after = ctx.matrix.data[lone.uid]
        assert np.allclose(before / before.sum(), after / after.sum())

    def test_sharpen_doubles_preferred_slot(self, vliw4):
        b = RegionBuilder("r")
        x = b.live_in()
        b.live_out(b.fadd(x, x))
        region = b.build()
        ctx = make_ctx(region, vliw4)
        ctx.matrix.scale(0, 3.0, cluster=1, time=0)
        ctx.matrix.normalize()
        CommunicationMinimize(include_grand=False, sharpen=2.0).apply(ctx)
        ctx.matrix.check_invariants()
        assert ctx.matrix.preferred_cluster(0) == 1


class TestPlaceProp:
    def stencil_region(self, machine):
        b = RegionBuilder("r")
        lhs = b.load(bank=0, array="a", name="a[0]")
        rhs = b.load(bank=1, array="a", name="a[1]")
        s = b.fadd(lhs, rhs)
        b.store(s, bank=0, array="out")
        program = Program("p", [b.build()])
        apply_congruence(program, machine)
        return program.regions[0], lhs, rhs

    def test_propagates_toward_anchors(self, vliw4):
        region, lhs, rhs = self.stencil_region(vliw4)
        ctx = make_ctx(region, vliw4)
        Place().apply(ctx)
        PreplacementPropagate().apply(ctx)
        ctx.matrix.check_invariants()
        # The fadd neighbours banks 0 and 1; distant clusters 2,3 lose.
        marg = ctx.matrix.cluster_marginals()[2]
        assert marg[0] > marg[2] and marg[0] > marg[3]
        assert marg[1] > marg[2]

    def test_noop_without_preplacement(self, vliw4):
        b = RegionBuilder("r")
        x = b.live_in()
        b.live_out(b.fadd(x, x))
        region = b.build()
        ctx = make_ctx(region, vliw4)
        before = ctx.matrix.data.copy()
        PreplacementPropagate().apply(ctx)
        assert np.allclose(ctx.matrix.data, before)

    def test_preplaced_instructions_unscaled(self, vliw4):
        region, lhs, rhs = self.stencil_region(vliw4)
        ctx = make_ctx(region, vliw4)
        before = ctx.matrix.data[lhs.uid].copy()
        PreplacementPropagate().apply(ctx)
        after = ctx.matrix.data[lhs.uid]
        assert np.allclose(before / before.sum(), after / after.sum())


class TestLoadBalance:
    def test_discourages_heavy_cluster(self, vliw4):
        b = RegionBuilder("r")
        x = b.live_in()
        for _ in range(4):
            x = b.fadd(x, x)
        b.live_out(x)
        region = b.build()
        ctx = make_ctx(region, vliw4)
        ctx.matrix.data[:, 0, :] *= 10
        ctx.matrix.touch()
        ctx.matrix.normalize()
        heavy_before = expected_cluster_load(ctx.matrix)[0]
        LoadBalance().apply(ctx)
        heavy_after = expected_cluster_load(ctx.matrix)[0]
        assert heavy_after < heavy_before

    def test_balanced_input_stays_balanced(self, vliw4):
        b = RegionBuilder("r")
        x = b.live_in()
        b.live_out(b.fadd(x, x))
        region = b.build()
        ctx = make_ctx(region, vliw4)
        before = ctx.matrix.data.copy()
        LoadBalance().apply(ctx)
        assert np.allclose(ctx.matrix.data, before)

    def test_expected_load_sums_to_instruction_count(self, vliw4):
        b = RegionBuilder("r")
        x = b.live_in()
        b.live_out(b.fadd(x, x))
        region = b.build()
        ctx = make_ctx(region, vliw4)
        assert expected_cluster_load(ctx.matrix).sum() == pytest.approx(len(region.ddg))


class TestMultiPath:
    def test_paths_validation(self):
        with pytest.raises(ValueError):
            CriticalPathStrengthen(paths=0)

    def two_chains(self):
        b = RegionBuilder("r")
        u = b.live_in(name="u")
        v = b.live_in(name="v")
        for _ in range(4):
            u = b.fmul(u, u)
        for _ in range(4):
            v = b.fmul(v, v)
        b.live_out(u)
        b.live_out(v)
        return b.build()

    def test_two_paths_cover_both_chains(self, vliw4):
        region = self.two_chains()
        ctx = make_ctx(region, vliw4)
        pass_ = CriticalPathStrengthen(paths=2)
        paths = pass_._find_paths(ctx)
        assert len(paths) == 2
        covered = {uid for p in paths for uid in p}
        assert len(covered) >= len(region.ddg) - 2

    def test_paths_are_disjoint(self, vliw4):
        region = self.two_chains()
        ctx = make_ctx(region, vliw4)
        paths = CriticalPathStrengthen(paths=3)._find_paths(ctx)
        seen = set()
        for p in paths:
            assert not (seen & set(p))
            seen.update(p)

    def test_each_chain_gets_one_cluster(self, vliw4):
        region = self.two_chains()
        ctx = make_ctx(region, vliw4)
        CriticalPathStrengthen(paths=2).apply(ctx)
        chains = [[], []]
        for inst in region.ddg:
            if inst.opcode.value == "fmul":
                chains[0 if inst.uid < 6 else 1].append(inst.uid)
        for chain in chains:
            clusters = {ctx.matrix.preferred_cluster(u) for u in chain}
            assert len(clusters) == 1

"""Unit tests for regions and programs."""

import pytest

from repro.ir import Opcode, Program, Region, RegionBuilder, RegionKind
from repro.ir.ddg import DataDependenceGraph


def small_region(name="r", trip=1):
    b = RegionBuilder(name, trip_count=trip)
    x = b.live_in(name="x")
    b.live_out(b.fadd(x, b.li(1.0)))
    return b.build()


class TestRegion:
    def test_invalid_trip_count(self):
        with pytest.raises(ValueError):
            Region(name="r", ddg=DataDependenceGraph(), trip_count=0)

    def test_default_kind_is_trace(self):
        assert small_region().kind is RegionKind.TRACE

    def test_live_in_out_and_real_partition(self):
        region = small_region()
        uids = set(range(len(region.ddg)))
        partition = (
            set(region.live_ins()) | set(region.live_outs()) | set(region.real_instructions())
        )
        assert partition == uids
        assert len(region.real_instructions()) == 2

    def test_len_matches_ddg(self):
        region = small_region()
        assert len(region) == len(region.ddg)

    def test_region_kinds_enumerate_paper_units(self):
        names = {k.value for k in RegionKind}
        assert {"basic_block", "trace", "superblock", "hyperblock", "treegion"} == names


class TestProgram:
    def test_add_returns_region(self):
        program = Program("p")
        region = small_region()
        assert program.add(region) is region
        assert program.regions == [region]

    def test_total_instructions(self):
        program = Program("p")
        program.add(small_region("a"))
        program.add(small_region("b"))
        assert program.total_instructions() == 2 * len(small_region())

    def test_empty_program(self):
        assert Program("p").total_instructions() == 0

"""Unit tests for the RegionBuilder front end."""

import pytest

from repro.ir import Opcode, RegionBuilder
from repro.ir.regions import RegionKind


class TestValues:
    def test_li_records_immediate(self):
        b = RegionBuilder("r")
        v = b.li(2.5, name="2.5")
        region = b.build()
        assert region.ddg.instruction(v.uid).immediate == 2.5

    def test_arithmetic_helpers_emit_expected_opcodes(self):
        b = RegionBuilder("r")
        x, y = b.li(1), b.li(2)
        cases = [
            (b.add(x, y), Opcode.ADD),
            (b.sub(x, y), Opcode.SUB),
            (b.mul(x, y), Opcode.MUL),
            (b.xor(x, y), Opcode.XOR),
            (b.and_(x, y), Opcode.AND),
            (b.or_(x, y), Opcode.OR),
            (b.shl(x, y), Opcode.SHL),
            (b.fadd(x, y), Opcode.FADD),
            (b.fsub(x, y), Opcode.FSUB),
            (b.fmul(x, y), Opcode.FMUL),
            (b.fdiv(x, y), Opcode.FDIV),
        ]
        region = b.build()
        for value, opcode in cases:
            assert region.ddg.instruction(value.uid).opcode is opcode

    def test_operand_edges_created(self):
        b = RegionBuilder("r")
        x, y = b.li(1), b.li(2)
        z = b.fadd(x, y)
        region = b.build()
        preds = {e.src for e in region.ddg.predecessors(z.uid)}
        assert preds == {x.uid, y.uid}


class TestReduce:
    def test_reduce_balanced_tree(self):
        b = RegionBuilder("r")
        leaves = [b.li(float(i)) for i in range(8)]
        b.reduce(leaves)
        region = b.build()
        # 8 leaves -> 7 adds; tree depth is 3, so CPL = li + 3 fadds + last result
        fadds = [i for i in region.ddg if i.opcode is Opcode.FADD]
        assert len(fadds) == 7
        assert region.ddg.levels()[fadds[-1].uid] == 3

    def test_reduce_single_value_is_identity(self):
        b = RegionBuilder("r")
        v = b.li(1.0)
        assert b.reduce([v]).uid == v.uid

    def test_reduce_empty_raises(self):
        b = RegionBuilder("r")
        with pytest.raises(ValueError):
            b.reduce([])

    def test_reduce_odd_count(self):
        b = RegionBuilder("r")
        leaves = [b.li(float(i)) for i in range(5)]
        b.reduce(leaves)
        region = b.build()
        assert sum(1 for i in region.ddg if i.opcode is Opcode.FADD) == 4


class TestMemoryOrdering:
    def test_load_after_store_same_array_bank_ordered(self):
        b = RegionBuilder("r")
        v = b.li(1.0)
        store = b.store(v, bank=0, array="a")
        load = b.load(bank=0, array="a")
        region = b.build()
        kinds = [(e.src, e.kind) for e in region.ddg.predecessors(load.uid)]
        assert (store.uid, "mem") in kinds

    def test_load_after_store_different_array_unordered(self):
        b = RegionBuilder("r")
        v = b.li(1.0)
        b.store(v, bank=0, array="a")
        load = b.load(bank=0, array="b")
        region = b.build()
        assert region.ddg.predecessors(load.uid) == []

    def test_load_after_store_different_bank_unordered(self):
        b = RegionBuilder("r")
        v = b.li(1.0)
        b.store(v, bank=0, array="a")
        load = b.load(bank=1, array="a")
        region = b.build()
        assert region.ddg.predecessors(load.uid) == []

    def test_store_after_load_anti_dependence(self):
        b = RegionBuilder("r")
        load = b.load(bank=2, array="a")
        v = b.li(1.0)
        store = b.store(v, bank=2, array="a")
        region = b.build()
        anti = [
            e for e in region.ddg.predecessors(store.uid)
            if e.src == load.uid and e.kind == "mem"
        ]
        assert anti and anti[0].latency == 0

    def test_store_after_store_ordered(self):
        b = RegionBuilder("r")
        v = b.li(1.0)
        first = b.store(v, bank=0, array="a")
        second = b.store(v, bank=0, array="a")
        region = b.build()
        assert any(
            e.src == first.uid and e.kind == "mem"
            for e in region.ddg.predecessors(second.uid)
        )

    def test_bank_recorded_on_memory_ops(self):
        b = RegionBuilder("r")
        load = b.load(bank=5, array="a")
        region = b.build()
        assert region.ddg.instruction(load.uid).bank == 5


class TestRegionLifecycle:
    def test_build_twice_raises(self):
        b = RegionBuilder("r")
        b.li(1.0)
        b.build()
        with pytest.raises(RuntimeError):
            b.build()

    def test_region_metadata(self):
        b = RegionBuilder("hot", kind=RegionKind.SUPERBLOCK, trip_count=100)
        b.li(1.0)
        region = b.build()
        assert region.name == "hot"
        assert region.kind is RegionKind.SUPERBLOCK
        assert region.trip_count == 100

    def test_live_in_out_listing(self):
        b = RegionBuilder("r")
        vin = b.live_in(name="x")
        v = b.fadd(vin, b.li(1.0))
        b.live_out(v, name="y")
        region = b.build()
        assert region.live_ins() == [vin.uid]
        assert len(region.live_outs()) == 1
        assert len(region.real_instructions()) == 2  # fadd + li

    def test_built_region_validates(self):
        b = RegionBuilder("r")
        x = b.load(bank=0)
        b.store(x, bank=0)
        b.build(validate=True)  # should not raise

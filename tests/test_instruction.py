"""Unit tests for instructions and dependence edges."""

import pytest

from repro.ir.instruction import DependenceEdge, Instruction
from repro.ir.opcode import FuncClass, Opcode


class TestInstruction:
    def test_basic_construction(self):
        inst = Instruction(uid=3, opcode=Opcode.ADD, operands=(1, 2))
        assert inst.uid == 3
        assert inst.operands == (1, 2)
        assert not inst.preplaced

    def test_operands_normalized_to_tuple(self):
        inst = Instruction(uid=0, opcode=Opcode.FADD, operands=[])
        assert inst.operands == ()

    def test_negative_uid_rejected(self):
        with pytest.raises(ValueError):
            Instruction(uid=-1, opcode=Opcode.ADD)

    def test_self_dependence_rejected(self):
        with pytest.raises(ValueError):
            Instruction(uid=5, opcode=Opcode.ADD, operands=(5,))

    def test_preplacement(self):
        inst = Instruction(uid=0, opcode=Opcode.LOAD, home_cluster=2)
        assert inst.preplaced
        assert inst.home_cluster == 2

    def test_func_class_property(self):
        assert Instruction(uid=0, opcode=Opcode.FMUL).func_class is FuncClass.FPU
        assert Instruction(uid=0, opcode=Opcode.LOAD).func_class is FuncClass.MEM

    def test_store_defines_no_value(self):
        store = Instruction(uid=1, opcode=Opcode.STORE, operands=(0,))
        assert not store.defines_value

    def test_live_out_defines_no_value(self):
        out = Instruction(uid=1, opcode=Opcode.LIVE_OUT, operands=(0,))
        assert not out.defines_value
        assert out.is_pseudo

    def test_arithmetic_defines_value(self):
        assert Instruction(uid=0, opcode=Opcode.ADD).defines_value
        assert Instruction(uid=0, opcode=Opcode.LOAD).defines_value

    def test_label_contains_uid_and_mnemonic(self):
        inst = Instruction(uid=7, opcode=Opcode.FSQRT, name="sqrt(x)")
        assert "7" in inst.label()
        assert "fsqrt" in inst.label()
        assert "sqrt(x)" in inst.label()


class TestDependenceEdge:
    def test_data_edge_carries_value(self):
        edge = DependenceEdge(src=0, dst=1, latency=3, kind="data")
        assert edge.carries_value

    def test_mem_edge_does_not_carry_value(self):
        edge = DependenceEdge(src=0, dst=1, latency=1, kind="mem")
        assert not edge.carries_value

    def test_order_edge_does_not_carry_value(self):
        assert not DependenceEdge(src=0, dst=1, kind="order").carries_value

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            DependenceEdge(src=0, dst=1, kind="antimatter")

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            DependenceEdge(src=0, dst=1, latency=-1)

    def test_zero_latency_allowed(self):
        assert DependenceEdge(src=0, dst=1, latency=0, kind="mem").latency == 0

"""Tests for heterogeneous machines (clusters missing functional units).

Section 4's INITTIME note: "A pass similar to this one can address the
fact that some instructions cannot be scheduled in all clusters in some
architectures, simply by squashing the weights for the unfeasible
clusters."  Our INITTIME folds that in; these tests pin the behaviour on
a VLIW whose last clusters have no floating-point unit.
"""

import numpy as np
import pytest

from repro.core import ConvergentScheduler, PreferenceMatrix
from repro.core.passes import InitTime, PassContext
from repro.ir.opcode import FuncClass
from repro.machine import ClusteredVLIW
from repro.schedulers import UnifiedAssignAndSchedule
from repro.schedulers.list_scheduler import feasible_clusters
from repro.sim import simulate
from repro.workloads import build_benchmark

from .conftest import build_dot_region


@pytest.fixture
def hetero():
    """Four clusters; only 0 and 1 have FPUs."""
    return ClusteredVLIW(4, fp_clusters=(0, 1))


class TestMachineModel:
    def test_fpu_presence(self, hetero):
        assert hetero.clusters[0].can_execute(FuncClass.FPU)
        assert hetero.clusters[1].can_execute(FuncClass.FPU)
        assert not hetero.clusters[2].can_execute(FuncClass.FPU)
        assert not hetero.clusters[3].can_execute(FuncClass.FPU)

    def test_name_reflects_heterogeneity(self, hetero):
        assert hetero.name == "vliw4f2"

    def test_invalid_fp_cluster_rejected(self):
        with pytest.raises(ValueError):
            ClusteredVLIW(2, fp_clusters=(5,))

    def test_integer_units_everywhere(self, hetero):
        for c in range(4):
            assert hetero.can_execute(c, FuncClass.IALU)
            assert hetero.can_execute(c, FuncClass.MEM)


class TestFeasibility:
    def test_fp_feasible_set_restricted(self, hetero):
        region = build_dot_region(n=2, banks=2)
        for inst in region.ddg:
            feasible = feasible_clusters(inst, hetero)
            if inst.func_class is FuncClass.FPU:
                assert feasible == [0, 1]
            elif not inst.preplaced:
                assert feasible == [0, 1, 2, 3]

    def test_inittime_squashes_fpu_less_clusters(self, hetero):
        region = build_dot_region(n=2, banks=2)
        matrix = PreferenceMatrix.for_region(region.ddg, 4)
        ctx = PassContext(
            ddg=region.ddg, machine=hetero, matrix=matrix,
            rng=np.random.default_rng(0),
        )
        InitTime().apply(ctx)
        for inst in region.ddg:
            if inst.func_class is FuncClass.FPU:
                marg = matrix.cluster_marginals()[inst.uid]
                assert marg[2] == 0.0 and marg[3] == 0.0


class TestSchedulers:
    def test_convergent_schedules_legally(self, hetero):
        program = build_benchmark("yuv", hetero)
        region = program.regions[0]
        schedule = ConvergentScheduler().schedule(region, hetero)
        report = simulate(region, hetero, schedule)
        assert report.ok
        for inst in region.ddg:
            if inst.func_class is FuncClass.FPU:
                assert schedule.cluster_of(inst.uid) in (0, 1)

    def test_uas_schedules_legally(self, hetero):
        program = build_benchmark("tomcatv", hetero)
        region = program.regions[0]
        schedule = UnifiedAssignAndSchedule().schedule(region, hetero)
        assert simulate(region, hetero, schedule).ok

    def test_integer_work_can_use_fpu_less_clusters(self, hetero):
        program = build_benchmark("sha", hetero, rounds=8, blocks=4)
        region = program.regions[0]
        schedule = UnifiedAssignAndSchedule().schedule(region, hetero)
        assert simulate(region, hetero, schedule).ok
        used = {op.cluster for op in schedule.ops.values()}
        assert used & {2, 3}

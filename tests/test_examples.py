"""Smoke tests: every shipped example runs end to end.

The examples are a deliverable, not decoration; each must execute
cleanly as a subprocess (fresh interpreter, like a user would run it)
and produce the headline output its narrative promises.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

CASES = {
    "quickstart.py": "schedule:",
    "tradeoff.py": "careful",
    "preference_maps.py": "final schedule",
    "custom_pass.py": "with PAIR",
    "raw_vs_vliw.py": "raw4x4",
    "whole_program.py": "whole-program cycles",
    "register_pressure.py": "spills",
    "switch_programs.py": "switch programs",
}


@pytest.mark.parametrize("script", sorted(CASES))
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert CASES[script] in result.stdout


def test_every_example_is_covered():
    shipped = {p.name for p in EXAMPLES.glob("*.py")}
    assert shipped == set(CASES)

"""Unit tests for convergence instrumentation and graph analysis."""

import pytest

from repro.analysis import graph_shape, slack_histogram, width_profile
from repro.core import PreferenceMatrix
from repro.core.metrics import ConvergenceTrace, TEMPORAL_ONLY_PASSES
from repro.ir import DataDependenceGraph, Opcode


class TestConvergenceTrace:
    def make_matrix(self):
        return PreferenceMatrix(4, 3, 5)

    def test_no_change_records_zero(self):
        m = self.make_matrix()
        trace = ConvergenceTrace()
        trace.observe_initial(m)
        record = trace.observe_pass("COMM", m)
        assert record.changed_fraction == 0.0

    def test_change_fraction_counts_moved_instructions(self):
        m = self.make_matrix()
        trace = ConvergenceTrace()
        trace.observe_initial(m)
        m.scale(0, 10.0, cluster=2)
        m.scale(1, 10.0, cluster=2)
        m.normalize()
        record = trace.observe_pass("PATH", m)
        assert record.changed_fraction == pytest.approx(0.5)

    def test_temporal_passes_flagged(self):
        m = self.make_matrix()
        trace = ConvergenceTrace()
        trace.observe_initial(m)
        trace.observe_pass("INITTIME", m)
        trace.observe_pass("COMM", m)
        trace.observe_pass("EMPHCP", m)
        spatial = [r.pass_name for r in trace.spatial_records()]
        assert spatial == ["COMM"]
        assert "INITTIME" in TEMPORAL_ONLY_PASSES

    def test_series_matches_spatial_records(self):
        m = self.make_matrix()
        trace = ConvergenceTrace()
        trace.observe_initial(m)
        trace.observe_pass("LOAD", m)
        trace.observe_pass("PLACE", m)
        assert trace.series() == [0.0, 0.0]

    def test_snapshots_optional(self):
        m = self.make_matrix()
        trace = ConvergenceTrace(keep_snapshots=True)
        trace.observe_initial(m)
        trace.observe_pass("COMM", m)
        assert all(r.snapshot is not None for r in trace.records)

    def test_render_mentions_passes(self):
        m = self.make_matrix()
        trace = ConvergenceTrace()
        trace.observe_initial(m)
        trace.observe_pass("COMM", m)
        assert "COMM" in trace.render("test")


class TestGraphShape:
    def chain(self, n=6):
        g = DataDependenceGraph()
        prev = g.new_instruction(Opcode.LI)
        for _ in range(n - 1):
            prev = g.new_instruction(Opcode.FADD, (prev.uid,))
        return g

    def wide(self, n=6):
        g = DataDependenceGraph()
        for _ in range(n):
            g.new_instruction(Opcode.LI)
        return g

    def test_chain_is_thin(self):
        shape = graph_shape(self.chain(10))
        assert not shape.is_fat
        assert shape.max_width == 1

    def test_independent_ops_are_fat(self):
        shape = graph_shape(self.wide(12))
        assert shape.is_fat
        assert shape.max_width == 12
        assert shape.critical_path_length == 1

    def test_empty_graph(self):
        shape = graph_shape(DataDependenceGraph())
        assert shape.instructions == 0

    def test_width_profile_sums_to_size(self):
        g = self.chain(5)
        assert sum(width_profile(g)) == 5

    def test_slack_histogram_chain_all_zero(self):
        histogram = slack_histogram(self.chain(5))
        assert histogram == {"0-3": 5}

    def test_preplaced_fraction(self):
        g = DataDependenceGraph()
        g.new_instruction(Opcode.LOAD, home_cluster=0)
        g.new_instruction(Opcode.LI)
        assert graph_shape(g).preplaced_fraction == 0.5


class TestTraceRendering:
    def make_schedule(self):
        from repro.machine import ClusteredVLIW
        from repro.schedulers import UnifiedAssignAndSchedule
        from .conftest import build_dot_region

        machine = ClusteredVLIW(4)
        region = build_dot_region(n=4, banks=4)
        schedule = UnifiedAssignAndSchedule().schedule(region, machine)
        return region, machine, schedule

    def test_gantt_mentions_instructions_and_clusters(self):
        from repro.sim.trace import gantt

        region, machine, schedule = self.make_schedule()
        text = gantt(region, machine, schedule)
        assert "c0" in text and "fmul" in text

    def test_gantt_truncation(self):
        from repro.sim.trace import gantt

        region, machine, schedule = self.make_schedule()
        text = gantt(region, machine, schedule, max_cycles=2)
        assert "more cycles" in text

    def test_narrate_lists_issues_and_arrivals(self):
        from repro.sim.trace import narrate

        region, machine, schedule = self.make_schedule()
        text = narrate(region, machine, schedule)
        assert "issues" in text
        if schedule.comms:
            assert "receives" in text


class TestBottleneckAnalysis:
    def schedule_for(self, region, machine, cluster=None):
        from repro.schedulers import ListScheduler, UnifiedAssignAndSchedule

        if cluster is None:
            return UnifiedAssignAndSchedule().schedule(region, machine)
        assignment = {i: cluster for i in range(len(region.ddg))}
        return ListScheduler().schedule(region, machine, assignment=assignment)

    def test_chain_is_critical_path_bound(self):
        from repro.analysis import analyze_bottleneck
        from repro.machine import ClusteredVLIW
        from .conftest import build_chain_region

        machine = ClusteredVLIW(4)
        region = build_chain_region(length=10)
        schedule = self.schedule_for(region, machine)
        report = analyze_bottleneck(region, machine, schedule)
        assert report.binding == "critical-path"
        assert report.efficiency() > 0.8

    def test_piled_up_work_is_issue_bound(self):
        from repro.analysis import analyze_bottleneck
        from repro.machine import RawMachine
        from .conftest import build_dot_region

        machine = RawMachine(2, 2)
        region = build_dot_region(n=16, banks=1)  # all banks -> tile 1
        schedule = self.schedule_for(region, machine)
        report = analyze_bottleneck(region, machine, schedule)
        # 32 single-issue memory ops on one tile dominate CPL.
        assert report.issue_bound >= 32
        assert report.binding == "issue"

    def test_bounds_never_exceed_makespan(self):
        from repro.analysis import analyze_bottleneck
        from repro.machine import ClusteredVLIW
        from repro.workloads import build_benchmark

        machine = ClusteredVLIW(4)
        region = build_benchmark("mxm", machine).regions[0]
        schedule = self.schedule_for(region, machine)
        report = analyze_bottleneck(region, machine, schedule)
        assert report.slack >= 0
        assert 0 < report.efficiency() <= 1.0

    def test_render_names_the_binding_constraint(self):
        from repro.analysis import analyze_bottleneck
        from repro.machine import ClusteredVLIW
        from .conftest import build_chain_region

        machine = ClusteredVLIW(2)
        region = build_chain_region(length=6)
        schedule = self.schedule_for(region, machine)
        text = analyze_bottleneck(region, machine, schedule).render()
        assert "bound by" in text and "slack" in text

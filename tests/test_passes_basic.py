"""Unit tests for INITTIME, NOISE, PLACE, FIRST, and EMPHCP."""

import numpy as np
import pytest

from repro.core import PreferenceMatrix
from repro.core.passes import (
    EmphasizeCriticalPathDistance,
    First,
    InitTime,
    Noise,
    PassContext,
    Place,
)
from repro.ir import RegionBuilder
from repro.machine import ClusteredVLIW, RawMachine


def make_ctx(region, machine, seed=0):
    matrix = PreferenceMatrix.for_region(region.ddg, machine.n_clusters)
    return PassContext(
        ddg=region.ddg,
        machine=machine,
        matrix=matrix,
        rng=np.random.default_rng(seed),
    )


def chain_region():
    b = RegionBuilder("chain")
    v = b.live_in(name="v")
    one = b.li(1.0)
    for _ in range(3):
        v = b.fadd(v, one)
    b.live_out(v)
    return b.build()


class TestInitTime:
    def test_zeroes_infeasible_slots(self, vliw4):
        region = chain_region()
        ctx = make_ctx(region, vliw4)
        InitTime().apply(ctx)
        ctx.matrix.check_invariants()
        est = region.ddg.earliest_start()
        tail = region.ddg.tail_length()
        cpl = region.ddg.critical_path_length()
        for i in range(len(region.ddg)):
            time_marg = ctx.matrix.time_marginals()[i]
            for t in range(ctx.matrix.n_time_slots):
                feasible = est[i] <= t <= cpl - 1 - tail[i]
                if not feasible:
                    assert time_marg[t] == 0.0

    def test_critical_path_instruction_single_slot(self, vliw4):
        region = chain_region()
        ctx = make_ctx(region, vliw4)
        InitTime().apply(ctx)
        # Every instruction of a pure chain is critical: one feasible slot.
        for i in region.real_instructions():
            if region.ddg.slack()[i] == 0:
                nonzero = np.count_nonzero(ctx.matrix.time_marginals()[i])
                assert nonzero == 1

    def test_squashes_infeasible_clusters_for_preplaced(self, raw4):
        b = RegionBuilder("r")
        x = b.load(bank=2, array="a")  # hard affinity -> tile 2
        b.live_out(x)
        region = b.build()
        from repro.workloads import apply_congruence
        from repro.ir.regions import Program

        apply_congruence(Program("p", [region]), raw4)
        ctx = make_ctx(region, raw4)
        InitTime().apply(ctx)
        marg = ctx.matrix.cluster_marginals()[x.uid]
        assert marg[2] > 0
        assert marg[0] == marg[1] == marg[3] == 0


class TestNoise:
    def test_breaks_symmetry(self, vliw4):
        region = chain_region()
        ctx = make_ctx(region, vliw4)
        Noise().apply(ctx)
        ctx.matrix.check_invariants()
        marg = ctx.matrix.cluster_marginals()
        assert not np.allclose(marg, marg[:, :1])

    def test_preserves_zeros(self, vliw4):
        region = chain_region()
        ctx = make_ctx(region, vliw4)
        ctx.matrix.squash_cluster(0, 3)
        ctx.matrix.normalize()
        Noise().apply(ctx)
        assert ctx.matrix.cluster_marginals()[0][3] == 0.0

    def test_deterministic_under_seed(self, vliw4):
        region1, region2 = chain_region(), chain_region()
        ctx1 = make_ctx(region1, vliw4, seed=42)
        ctx2 = make_ctx(region2, vliw4, seed=42)
        Noise().apply(ctx1)
        Noise().apply(ctx2)
        assert np.allclose(ctx1.matrix.data, ctx2.matrix.data)

    def test_amount_zero_is_identity(self, vliw4):
        region = chain_region()
        ctx = make_ctx(region, vliw4)
        before = ctx.matrix.data.copy()
        Noise(amount=0.0).apply(ctx)
        assert np.allclose(ctx.matrix.data, before)

    def test_negative_amount_rejected(self):
        with pytest.raises(ValueError):
            Noise(amount=-1.0)


class TestPlace:
    def test_preplaced_prefer_home(self, vliw4):
        b = RegionBuilder("r")
        x = b.live_in(name="x", home_cluster=2)
        b.live_out(b.fadd(x, b.li(1.0)))
        region = b.build()
        ctx = make_ctx(region, vliw4)
        Place().apply(ctx)
        assert ctx.matrix.preferred_cluster(x.uid) == 2

    def test_boost_is_strong(self, vliw4):
        b = RegionBuilder("r")
        x = b.live_in(name="x", home_cluster=1)
        b.live_out(x)
        region = b.build()
        ctx = make_ctx(region, vliw4)
        Place().apply(ctx)
        ctx.matrix.normalize()
        assert ctx.matrix.confidence(x.uid) >= 50.0

    def test_no_preplaced_is_noop(self, vliw4):
        region = chain_region()
        ctx = make_ctx(region, vliw4)
        before = ctx.matrix.data.copy()
        Place().apply(ctx)
        assert np.allclose(ctx.matrix.data, before)


class TestFirst:
    def test_biases_cluster_zero(self, vliw4):
        region = chain_region()
        ctx = make_ctx(region, vliw4)
        First().apply(ctx)
        ctx.matrix.check_invariants()
        for i in range(len(region.ddg)):
            assert ctx.matrix.preferred_cluster(i) == 0

    def test_boost_ratio(self, vliw4):
        region = chain_region()
        ctx = make_ctx(region, vliw4)
        First(boost=1.2).apply(ctx)
        marg = ctx.matrix.cluster_marginals()[0]
        assert marg[0] / marg[1] == pytest.approx(1.2)


class TestEmphCP:
    def test_emphasizes_level_slot(self, vliw4):
        region = chain_region()
        ctx = make_ctx(region, vliw4)
        EmphasizeCriticalPathDistance().apply(ctx)
        ctx.matrix.check_invariants()
        levels = region.ddg.levels()
        for i in range(len(region.ddg)):
            slot = min(levels[i], ctx.matrix.n_time_slots - 1)
            assert ctx.matrix.preferred_time(i) == slot

    def test_level_clamped_to_horizon(self, vliw4):
        # Hop levels can exceed a deliberately small time horizon; the
        # pass must clamp rather than index out of range.
        region = chain_region()
        matrix = PreferenceMatrix(len(region.ddg), vliw4.n_clusters, 2)
        ctx = PassContext(
            ddg=region.ddg, machine=vliw4, matrix=matrix,
            rng=np.random.default_rng(0),
        )
        EmphasizeCriticalPathDistance().apply(ctx)  # must not raise
        ctx.matrix.check_invariants()

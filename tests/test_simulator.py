"""Unit tests for schedule validation and dataflow replay.

The simulator must accept every schedule our schedulers emit (covered
elsewhere) *and* reject corrupted ones: these tests mutate valid
schedules in targeted ways and check the right violation is reported.
"""

import dataclasses

import pytest

from repro.ir import RegionBuilder
from repro.schedulers import ListScheduler
from repro.schedulers.schedule import CommEvent, Schedule, ScheduledOp
from repro.sim import SimulationError, simulate

from .conftest import build_dot_region


@pytest.fixture
def valid(vliw4):
    region = build_dot_region(n=4, banks=4)
    assignment = {i: (0 if i < 8 else 1) for i in range(len(region.ddg))}
    schedule = ListScheduler().schedule(region, vliw4, assignment=assignment)
    return region, vliw4, schedule


def clone_without_op(schedule, uid):
    out = Schedule(schedule.region_name, schedule.machine_name)
    for k, op in schedule.ops.items():
        if k != uid:
            out.add_op(op)
    out.comms = list(schedule.comms)
    return out


def clone_with_op(schedule, replacement):
    out = Schedule(schedule.region_name, schedule.machine_name)
    for k, op in schedule.ops.items():
        out.add_op(replacement if k == replacement.uid else op)
    out.comms = list(schedule.comms)
    return out


class TestAccepts:
    def test_valid_schedule_passes(self, valid):
        region, machine, schedule = valid
        report = simulate(region, machine, schedule)
        assert report.ok
        assert report.cycles == schedule.makespan
        assert report.values_checked == len(region.ddg)

    def test_report_statistics(self, valid):
        region, machine, schedule = valid
        report = simulate(region, machine, schedule)
        assert report.instructions == len(region.real_instructions())
        assert report.transfers == schedule.comm_count()
        assert 0.0 < report.utilization(machine) <= 1.0


class TestRejects:
    def test_missing_instruction(self, valid):
        region, machine, schedule = valid
        broken = clone_without_op(schedule, 0)
        report = simulate(region, machine, broken, strict=False, check_values=False)
        assert not report.ok
        assert any("coverage" in e for e in report.errors)

    def test_strict_mode_raises(self, valid):
        region, machine, schedule = valid
        broken = clone_without_op(schedule, 0)
        with pytest.raises(SimulationError):
            simulate(region, machine, broken)

    def test_unit_conflict(self, valid):
        region, machine, schedule = valid
        # Force two FPU ops onto the same unit and cycle.
        fp_ops = [op for op in schedule.ops.values()
                  if region.ddg.instruction(op.uid).opcode.value == "fmul"]
        a, b = fp_ops[0], fp_ops[1]
        clash = dataclasses.replace(b, cluster=a.cluster, unit=a.unit, start=a.start)
        broken = clone_with_op(schedule, clash)
        report = simulate(region, machine, broken, strict=False, check_values=False)
        assert any("conflict" in e or "before operand" in e or "starts" in e
                   for e in report.errors)

    def test_dependence_violation(self, valid):
        region, machine, schedule = valid
        # Move a reduction op to cycle 0, before its operands.
        target = max(schedule.ops.values(), key=lambda op: op.start)
        early = dataclasses.replace(target, start=0)
        broken = clone_with_op(schedule, early)
        report = simulate(region, machine, broken, strict=False, check_values=False)
        assert not report.ok

    def test_wrong_latency(self, valid):
        region, machine, schedule = valid
        op = schedule.ops[0]
        broken = clone_with_op(schedule, dataclasses.replace(op, latency=op.latency + 1))
        report = simulate(region, machine, broken, strict=False, check_values=False)
        assert any("latency" in e for e in report.errors)

    def test_preplacement_violation(self, raw4):
        b = RegionBuilder("r")
        x = b.load(bank=1, array="a")
        b.live_out(x)
        from repro.ir.regions import Program
        from repro.workloads import apply_congruence

        program = Program("p", [b.build()])
        apply_congruence(program, raw4)
        region = program.regions[0]
        schedule = Schedule("r", raw4.name)
        schedule.add_op(ScheduledOp(uid=0, cluster=0, unit=0, start=0, latency=3))
        schedule.add_op(ScheduledOp(uid=1, cluster=0, unit=-1, start=3, latency=0))
        report = simulate(region, raw4, schedule, strict=False, check_values=False)
        assert any("feasible" in e for e in report.errors)

    def test_missing_transfer_detected(self, vliw4):
        b = RegionBuilder("r")
        x = b.li(1.0)
        y = b.fadd(x, x)
        b.live_out(y)
        region = b.build()
        schedule = Schedule("r", vliw4.name)
        schedule.add_op(ScheduledOp(uid=0, cluster=0, unit=0, start=0, latency=1))
        schedule.add_op(ScheduledOp(uid=1, cluster=1, unit=2, start=5, latency=4))
        schedule.add_op(ScheduledOp(uid=2, cluster=1, unit=-1, start=9, latency=0))
        report = simulate(region, vliw4, schedule, strict=False, check_values=False)
        assert any("never reaches" in e for e in report.errors)

    def test_premature_transfer_detected(self, valid):
        region, machine, schedule = valid
        if not schedule.comms:
            pytest.skip("no transfers in this schedule")
        ev = schedule.comms[0]
        schedule.comms[0] = dataclasses.replace(ev, issue=-1, arrival=-1 + 1)
        report = simulate(region, machine, schedule, strict=False, check_values=False)
        assert not report.ok

    def test_network_contention_detected(self, vliw4):
        b = RegionBuilder("r")
        x = b.li(1.0)
        y = b.li(2.0)
        u = b.fadd(x, x)
        v = b.fadd(y, y)
        b.live_out(u)
        b.live_out(v)
        region = b.build()
        assignment = {x.uid: 0, y.uid: 0, u.uid: 1, v.uid: 2, 4: 1, 5: 2}
        schedule = ListScheduler().schedule(region, vliw4, assignment=assignment)
        # Force both transfers onto the same issue cycle.
        first = schedule.comms[0]
        schedule.comms[1] = dataclasses.replace(
            schedule.comms[1], issue=first.issue, arrival=first.issue + 1
        )
        report = simulate(region, vliw4, schedule, strict=False, check_values=False)
        assert any("contention" in e for e in report.errors)


class TestResourceAccounting:
    def test_resource_busy_counts_transfers(self, vliw4):
        from repro.ir import RegionBuilder
        b = RegionBuilder("r")
        x = b.li(1.0)
        y = b.fadd(x, x)
        b.live_out(y)
        region = b.build()
        schedule = ListScheduler().schedule(
            region, vliw4, assignment={0: 0, 1: 1, 2: 1}
        )
        report = simulate(region, vliw4, schedule)
        assert report.resource_busy == {("xfer", 0, -1): 1}
        assert report.hottest_resource() == (("xfer", 0, -1), 1)

    def test_no_transfers_no_hotspot(self, vliw4):
        region = build_dot_region()
        schedule = ListScheduler().schedule(
            region, vliw4, assignment={i: 0 for i in range(len(region.ddg))}
        )
        report = simulate(region, vliw4, schedule)
        assert report.resource_busy == {}
        assert report.hottest_resource() is None

    def test_raw_links_counted_per_hop(self, raw16):
        from repro.ir import RegionBuilder
        b = RegionBuilder("r")
        x = b.li(1.0)
        y = b.fadd(x, x)
        b.live_out(y)
        region = b.build()
        schedule = ListScheduler().schedule(
            region, raw16, assignment={0: 0, 1: 15, 2: 15}
        )
        report = simulate(region, raw16, schedule)
        # Injection port, six directed links, ejection port: one cycle each.
        assert sum(report.resource_busy.values()) == 8

"""Unit tests for the CARS baseline scheduler."""

import pytest

from repro.machine import ClusteredVLIW
from repro.regalloc import allocate_registers, pressure_profile
from repro.schedulers import UnifiedAssignAndSchedule
from repro.schedulers.cars import CarsScheduler
from repro.sim import simulate
from repro.workloads import build_benchmark

from .conftest import build_dot_region


class TestCars:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CarsScheduler(register_weight=-1)
        with pytest.raises(ValueError):
            CarsScheduler(threshold=1.5)

    def test_produces_valid_schedules(self, vliw4, mxm_vliw):
        schedule = CarsScheduler().schedule(mxm_vliw, vliw4)
        report = simulate(mxm_vliw, vliw4, schedule)
        assert report.ok

    def test_respects_preplacement(self, raw4, jacobi_raw):
        schedule = CarsScheduler().schedule(jacobi_raw, raw4)
        for inst in jacobi_raw.ddg:
            if inst.preplaced:
                assert schedule.cluster_of(inst.uid) == inst.home_cluster

    def test_matches_uas_when_registers_plentiful(self, vliw4):
        region_a = build_dot_region(n=8, banks=4)
        region_b = build_dot_region(n=8, banks=4)
        cars = CarsScheduler().schedule(region_a, vliw4)
        uas = UnifiedAssignAndSchedule().schedule(region_b, vliw4)
        # With no register scarcity, the penalty never fires and the
        # behaviour reduces to UAS.
        assert cars.makespan == uas.makespan

    def test_lower_peak_pressure_when_registers_scarce(self):
        tiny = ClusteredVLIW(4, registers=6)
        program_c = build_benchmark("mxm", tiny)
        program_u = build_benchmark("mxm", tiny)
        region_c, region_u = program_c.regions[0], program_u.regions[0]
        cars = CarsScheduler(register_weight=12.0, threshold=0.5).schedule(
            region_c, tiny
        )
        uas = UnifiedAssignAndSchedule().schedule(region_u, tiny)
        simulate(region_c, tiny, cars)
        cars_peak = pressure_profile(region_c, tiny, cars).peak()
        uas_peak = pressure_profile(region_u, tiny, uas).peak()
        assert cars_peak <= uas_peak + 1

    def test_spills_stay_comparable_to_uas(self):
        """Register steering must not blow up spill counts.

        On inherently register-starved dense kernels most pressure comes
        from values that are live regardless of placement, so CARS tracks
        UAS closely rather than beating it; the invariant worth holding
        is that the steering never makes things substantially worse.
        """
        tiny = ClusteredVLIW(4, registers=6)
        region_c = build_benchmark("mxm", tiny).regions[0]
        region_u = build_benchmark("mxm", tiny).regions[0]
        cars = CarsScheduler(register_weight=12.0, threshold=0.5).schedule(
            region_c, tiny
        )
        uas = UnifiedAssignAndSchedule().schedule(region_u, tiny)
        cars_spills = allocate_registers(region_c, tiny, cars).spill_count
        uas_spills = allocate_registers(region_u, tiny, uas).spill_count
        assert cars_spills <= uas_spills * 1.15 + 2

    def test_live_values_counting(self, vliw4):
        from repro.schedulers.list_scheduler import _State, ReservationTable
        from repro.schedulers.schedule import Schedule

        region = build_dot_region(n=2, banks=1)
        state = _State(
            table=ReservationTable(),
            schedule=Schedule("r", "m"),
            start={}, finish={}, cluster={}, arrivals={},
        )
        # Place the two loads on cluster 0; their fmul consumers are
        # unscheduled, so both values are live.
        state.cluster = {0: 0, 1: 0}
        assert CarsScheduler.live_values(region.ddg, state, 0) == 2
        assert CarsScheduler.live_values(region.ddg, state, 1) == 0

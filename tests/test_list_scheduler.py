"""Unit tests for the communication-aware list scheduler."""

import pytest

from repro.ir import Opcode, RegionBuilder
from repro.ir.regions import Program
from repro.machine import ClusteredVLIW, RawMachine
from repro.schedulers import ListScheduler, SchedulingError
from repro.schedulers.list_scheduler import effective_latency, feasible_clusters
from repro.sim import simulate
from repro.workloads import apply_congruence

from .conftest import build_chain_region, build_dot_region


def all_on(cluster, region):
    return {i: cluster for i in range(len(region.ddg))}


class TestBasicScheduling:
    def test_chain_schedules_serially(self, vliw1):
        region = build_chain_region(length=4)
        sched = ListScheduler().schedule(region, vliw1, assignment=all_on(0, region))
        report = simulate(region, vliw1, sched)
        assert report.ok
        # Chain of 4 fadds at latency 4 plus the li: CPL bound.
        assert sched.makespan >= 16

    def test_all_instructions_scheduled(self, vliw4, dot_region):
        sched = ListScheduler().schedule(
            dot_region, vliw4, assignment=all_on(0, dot_region)
        )
        assert set(sched.ops) == set(range(len(dot_region.ddg)))

    def test_missing_assignment_raises(self, vliw4, dot_region):
        with pytest.raises(SchedulingError, match="no cluster assignment"):
            ListScheduler().schedule(dot_region, vliw4)

    def test_partial_assignment_raises(self, vliw4, dot_region):
        with pytest.raises(SchedulingError, match="missing instruction"):
            ListScheduler().schedule(dot_region, vliw4, assignment={0: 0})

    def test_infeasible_assignment_raises(self, raw4):
        b = RegionBuilder("r")
        x = b.load(bank=1, array="a")
        b.live_out(x)
        program = Program("p", [b.build()])
        apply_congruence(program, raw4)
        region = program.regions[0]
        with pytest.raises(SchedulingError, match="feasible"):
            ListScheduler().schedule(region, raw4, assignment=all_on(0, region))


class TestCommunication:
    def test_cross_cluster_data_inserts_transfer(self, vliw4):
        b = RegionBuilder("r")
        x = b.li(2.0)
        y = b.fadd(x, x)
        b.live_out(y)
        region = b.build()
        assignment = {x.uid: 0, y.uid: 1, 2: 1}
        sched = ListScheduler().schedule(region, vliw4, assignment=assignment)
        assert sched.comm_count() == 1
        (ev,) = sched.comms
        assert (ev.src, ev.dst) == (0, 1)
        assert ev.arrival == ev.issue + 1
        simulate(region, vliw4, sched)

    def test_transfer_reused_by_same_cluster_consumers(self, vliw4):
        b = RegionBuilder("r")
        x = b.li(2.0)
        y1 = b.fadd(x, x)
        y2 = b.fmul(x, x)
        b.live_out(y1)
        b.live_out(y2)
        region = b.build()
        assignment = {x.uid: 0, y1.uid: 1, y2.uid: 1, 3: 1, 4: 1}
        sched = ListScheduler().schedule(region, vliw4, assignment=assignment)
        # One value moved once, consumed twice.
        assert sched.comm_count() == 1
        simulate(region, vliw4, sched)

    def test_same_cluster_needs_no_transfer(self, vliw4, dot_region):
        sched = ListScheduler().schedule(
            dot_region, vliw4, assignment=all_on(2, dot_region)
        )
        assert sched.comm_count() == 0

    def test_raw_transfer_latency_includes_hops(self, raw16):
        b = RegionBuilder("r")
        x = b.li(1.0)
        y = b.fadd(x, x)
        b.live_out(y)
        region = b.build()
        assignment = {x.uid: 0, y.uid: 15, 2: 15}
        sched = ListScheduler().schedule(region, raw16, assignment=assignment)
        (ev,) = sched.comms
        assert ev.arrival - ev.issue == 8  # 2 + 6 hops
        simulate(region, raw16, sched)

    def test_vliw_transfer_contention_serializes(self, vliw4):
        # Two different values leaving cluster 0 in the same cycle must
        # share the single transfer unit.
        b = RegionBuilder("r")
        x = b.li(1.0)
        y = b.li(2.0)
        u = b.fadd(x, x)
        v = b.fadd(y, y)
        b.live_out(u)
        b.live_out(v)
        region = b.build()
        assignment = {x.uid: 0, y.uid: 0, u.uid: 1, v.uid: 2, 4: 1, 5: 2}
        sched = ListScheduler().schedule(region, vliw4, assignment=assignment)
        issues = sorted(ev.issue for ev in sched.comms)
        assert issues[0] != issues[1]
        simulate(region, vliw4, sched)


class TestResourcesAndLatency:
    def test_single_fpu_serializes_fp(self, vliw4):
        b = RegionBuilder("r")
        x = b.li(1.0)
        ops = [b.fmul(x, x) for _ in range(4)]
        for o in ops:
            b.live_out(o)
        region = b.build()
        sched = ListScheduler().schedule(region, vliw4, assignment=all_on(0, region))
        starts = sorted(sched.ops[o.uid].start for o in ops)
        assert len(set(starts)) == 4  # one FPU: distinct issue cycles
        simulate(region, vliw4, sched)

    def test_two_ialu_ops_can_coissue(self, vliw4):
        b = RegionBuilder("r")
        x = b.li(1)
        a1 = b.add(x, x)
        a2 = b.sub(x, x)
        b.live_out(a1)
        b.live_out(a2)
        region = b.build()
        sched = ListScheduler().schedule(region, vliw4, assignment=all_on(0, region))
        assert sched.ops[a1.uid].start == sched.ops[a2.uid].start
        simulate(region, vliw4, sched)

    def test_raw_single_issue(self, raw4):
        b = RegionBuilder("r")
        x = b.li(1)
        a1 = b.add(x, x)
        a2 = b.sub(x, x)
        b.live_out(a1)
        b.live_out(a2)
        region = b.build()
        sched = ListScheduler().schedule(region, raw4, assignment=all_on(0, region))
        assert sched.ops[a1.uid].start != sched.ops[a2.uid].start

    def test_remote_memory_penalty_on_vliw(self, vliw4):
        b = RegionBuilder("r")
        x = b.load(bank=3, array="a")
        b.live_out(x)
        region = b.build()
        inst = region.ddg.instruction(x.uid)
        assert effective_latency(inst, 3, vliw4) == 3
        assert effective_latency(inst, 0, vliw4) == 4

    def test_pseudo_ops_occupy_no_unit(self, vliw4, chain_region):
        sched = ListScheduler().schedule(
            chain_region, vliw4, assignment=all_on(0, chain_region)
        )
        for inst in chain_region.ddg:
            if inst.is_pseudo:
                assert sched.ops[inst.uid].unit == -1

    def test_priorities_steer_order(self, vliw4):
        # Two independent fmuls; give the second a much better priority.
        b = RegionBuilder("r")
        x = b.li(1.0)
        first = b.fmul(x, x)
        second = b.fmul(x, x)
        b.live_out(first)
        b.live_out(second)
        region = b.build()
        priorities = {first.uid: 10.0, second.uid: 0.0}
        sched = ListScheduler().schedule(
            region, vliw4, assignment=all_on(0, region), priorities=priorities
        )
        assert sched.ops[second.uid].start < sched.ops[first.uid].start


class TestFeasibleClusters:
    def test_preplaced_restricted_to_home(self, vliw4):
        b = RegionBuilder("r")
        x = b.live_in(home_cluster=2)
        b.live_out(x)
        region = b.build()
        inst = region.ddg.instruction(x.uid)
        assert feasible_clusters(inst, vliw4) == [2]

    def test_hard_affinity_restricts_memory(self, raw4):
        b = RegionBuilder("r")
        x = b.load(bank=3, array="a")
        b.live_out(x)
        region = b.build()
        inst = region.ddg.instruction(x.uid)
        assert feasible_clusters(inst, raw4) == [3]

    def test_soft_affinity_allows_any_cluster(self, vliw4):
        b = RegionBuilder("r")
        x = b.load(bank=3, array="a")
        b.live_out(x)
        region = b.build()
        inst = region.ddg.instruction(x.uid)
        assert feasible_clusters(inst, vliw4) == [0, 1, 2, 3]

    def test_fp_excluded_nowhere_on_vliw(self, vliw4, dot_region):
        for inst in dot_region.ddg:
            assert feasible_clusters(inst, vliw4) == [0, 1, 2, 3]

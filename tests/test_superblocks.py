"""Unit tests for superblock formation (tail duplication)."""

import pytest

from repro.core import ConvergentScheduler
from repro.ir import ControlFlowGraph, Opcode, RegionKind, Stmt, form_traces
from repro.ir.superblocks import program_from_cfg_superblocks, tail_duplicate
from repro.sim import simulate
from repro.workloads import apply_congruence

from .test_cfg import diamond_cfg


def has_side_entrance(cfg, trace):
    trace_set = set(trace)
    for name in trace[1:]:
        if any(e.src not in trace_set for e in cfg.predecessors(name)):
            return True
    return False


class TestTailDuplicate:
    def test_diamond_join_is_duplicated(self):
        cfg = diamond_cfg()
        cfg.propagate_frequencies(100)
        duplicated = tail_duplicate(cfg)
        names = {b.name for b in duplicated.blocks()}
        assert "join.dup" in names
        # The cold side now reaches the duplicate, not the original.
        else_targets = {e.dst for e in duplicated.successors("else")}
        assert else_targets == {"join.dup"}

    def test_no_trace_has_side_entrances_after_duplication(self):
        cfg = diamond_cfg()
        cfg.propagate_frequencies(100)
        duplicated = tail_duplicate(cfg)
        for trace in form_traces(duplicated):
            assert not has_side_entrance(duplicated, trace)

    def test_frequencies_split_between_original_and_clone(self):
        cfg = diamond_cfg()
        cfg.propagate_frequencies(100)
        duplicated = tail_duplicate(cfg)
        total = duplicated.frequency("join") + duplicated.frequency("join.dup")
        assert total == pytest.approx(100)
        assert duplicated.frequency("join.dup") == pytest.approx(10)

    def test_straight_line_is_untouched(self):
        cfg = ControlFlowGraph("line", inputs=set())
        for name in ("entry", "a"):
            cfg.add_block(name).add(Stmt(f"v{name}", Opcode.LI, immediate=1.0))
        cfg.add_edge("entry", "a")
        cfg.propagate_frequencies()
        duplicated = tail_duplicate(cfg)
        assert {b.name for b in duplicated.blocks()} == {"entry", "a"}

    def test_duplicated_cfg_validates(self):
        cfg = diamond_cfg()
        cfg.propagate_frequencies(100)
        tail_duplicate(cfg).validate()


class TestSuperblockProgram:
    def test_regions_are_superblocks(self):
        cfg = diamond_cfg()
        cfg.propagate_frequencies(100)
        program = program_from_cfg_superblocks(cfg)
        assert all(r.kind is RegionKind.SUPERBLOCK for r in program.regions)

    def test_cold_path_has_its_own_store(self):
        # After duplication both paths end in their own copy of the
        # store, so each region is self-contained.
        cfg = diamond_cfg()
        cfg.propagate_frequencies(100)
        program = program_from_cfg_superblocks(cfg)
        store_counts = [
            sum(1 for i in r.ddg if i.opcode is Opcode.STORE)
            for r in program.regions
        ]
        assert sorted(store_counts, reverse=True)[:2] == [1, 1]

    def test_superblock_regions_schedule_and_simulate(self, vliw4):
        cfg = diamond_cfg()
        cfg.propagate_frequencies(100)
        program = program_from_cfg_superblocks(cfg)
        apply_congruence(program, vliw4)
        for region in program.regions:
            schedule = ConvergentScheduler().schedule(region, vliw4)
            assert simulate(region, vliw4, schedule).ok

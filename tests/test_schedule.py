"""Unit tests for the Schedule data model."""

import pytest

from repro.schedulers.schedule import CommEvent, Schedule, ScheduledOp


def make_schedule():
    s = Schedule(region_name="r", machine_name="m")
    s.add_op(ScheduledOp(uid=0, cluster=0, unit=0, start=0, latency=3))
    s.add_op(ScheduledOp(uid=1, cluster=1, unit=0, start=5, latency=1))
    s.add_comm(
        CommEvent(producer_uid=0, src=0, dst=1, issue=3, arrival=4,
                  resources=(("xfer", 0, -1),))
    )
    return s


class TestScheduleBasics:
    def test_finish_is_start_plus_latency(self):
        op = ScheduledOp(uid=0, cluster=0, unit=0, start=2, latency=4)
        assert op.finish == 6

    def test_duplicate_uid_rejected(self):
        s = make_schedule()
        with pytest.raises(ValueError):
            s.add_op(ScheduledOp(uid=0, cluster=2, unit=0, start=9, latency=1))

    def test_makespan_covers_ops_and_comms(self):
        s = make_schedule()
        assert s.makespan == 6  # op 1 finishes at 6 > arrival 4

    def test_makespan_empty(self):
        assert Schedule(region_name="r", machine_name="m").makespan == 0

    def test_assignment_and_cluster_of(self):
        s = make_schedule()
        assert s.assignment() == {0: 0, 1: 1}
        assert s.cluster_of(1) == 1

    def test_ops_on_cluster_sorted(self):
        s = make_schedule()
        s.add_op(ScheduledOp(uid=2, cluster=0, unit=1, start=0, latency=1))
        uids = [op.uid for op in s.ops_on_cluster(0)]
        assert uids == [0, 2]

    def test_cluster_loads(self):
        s = make_schedule()
        assert s.cluster_loads(3) == [1, 1, 0]


class TestArrival:
    def test_local_arrival_is_finish(self):
        s = make_schedule()
        assert s.arrival_of(0, 0) == 3

    def test_remote_arrival_uses_transfer(self):
        s = make_schedule()
        assert s.arrival_of(0, 1) == 4

    def test_missing_transfer_returns_none(self):
        s = make_schedule()
        assert s.arrival_of(0, 2) is None

    def test_unscheduled_value_returns_none(self):
        s = make_schedule()
        assert s.arrival_of(42, 0) is None

    def test_earliest_of_multiple_transfers(self):
        s = make_schedule()
        s.add_comm(CommEvent(producer_uid=0, src=0, dst=1, issue=8, arrival=9))
        assert s.arrival_of(0, 1) == 4


class TestRender:
    def test_render_contains_clusters_and_uids(self):
        s = make_schedule()
        text = s.render(n_clusters=2)
        assert "c0" in text and "c1" in text
        assert "0" in text

    def test_render_truncates(self):
        s = Schedule(region_name="r", machine_name="m")
        s.add_op(ScheduledOp(uid=0, cluster=0, unit=0, start=500, latency=1))
        text = s.render(n_clusters=1, max_cycles=10)
        assert "more cycles" in text

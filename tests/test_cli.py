"""Unit tests for the command-line interface."""

import argparse

import pytest

from repro.cli import main, parse_machine


class TestParseMachine:
    def test_vliw(self):
        assert parse_machine("vliw4").n_clusters == 4

    def test_raw_mesh(self):
        machine = parse_machine("raw2x4")
        assert (machine.rows, machine.cols) == (2, 4)

    def test_raw_by_count(self):
        assert parse_machine("raw16").n_clusters == 16

    def test_unknown_rejected(self):
        with pytest.raises(argparse.ArgumentTypeError):
            parse_machine("tpu9000")


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mxm" in out and "COMM" in out and "convergent" in out

    def test_schedule(self, capsys):
        assert main(
            ["schedule", "--benchmark", "vvmul", "--machine", "vliw4",
             "--scheduler", "uas"]
        ) == 0
        out = capsys.readouterr().out
        assert "cycles" in out and "vvmul" in out

    def test_schedule_render(self, capsys):
        assert main(
            ["schedule", "--benchmark", "vvmul", "--render",
             "--max-cycles", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "cycle |" in out

    def test_table2_subset(self, capsys):
        assert main(
            ["table2", "--benchmarks", "jacobi", "--sizes", "4", "--fast"]
        ) == 0
        out = capsys.readouterr().out
        assert "jacobi" in out and "convergent over rawcc" in out

    def test_fig8_subset(self, capsys):
        assert main(["fig8", "--benchmarks", "vvmul", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "vvmul" in out and "uas" in out

    def test_fig10_small(self, capsys):
        assert main(["fig10", "--sizes", "40,80"]) == 0
        out = capsys.readouterr().out
        assert "pcc" in out and "80" in out

    def test_convergence(self, capsys):
        assert main(
            ["convergence", "--machine", "vliw4", "--benchmarks", "vvmul"]
        ) == 0
        out = capsys.readouterr().out
        assert "vvmul" in out

    def test_search_small(self, capsys):
        assert main(
            ["search", "--machine", "vliw4", "--benchmarks", "vvmul",
             "--iterations", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "best" in out and "INITTIME" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_benchmark_exits(self):
        with pytest.raises(SystemExit):
            main(["schedule", "--benchmark", "doom"])


class TestAllCommand:
    def test_all_small_and_saves_json(self, capsys, tmp_path, monkeypatch):
        import repro.cli as cli

        # Shrink the sweep so the test stays fast.
        monkeypatch.setattr(cli, "RAW_SUITE", ("jacobi",))
        monkeypatch.setattr(cli, "VLIW_SUITE", ("vvmul",))
        assert cli.main(
            ["all", "--out", str(tmp_path), "--sizes", "4",
             "--scaling-sizes", "40,80"]
        ) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "Figure 8" in out
        saved = sorted(p.name for p in tmp_path.iterdir())
        assert saved == ["fig10.json", "fig7.json", "fig8.json",
                         "fig9.json", "table2.json"]
        from repro.harness import load_result

        table = load_result(tmp_path / "table2.json")
        assert "jacobi" in table.speedups

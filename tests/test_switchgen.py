"""Unit tests for Raw static-network switch code generation."""

import pytest

from repro.core import ConvergentScheduler
from repro.ir import RegionBuilder
from repro.machine import RawMachine
from repro.machine.switchgen import (
    Port,
    generate_switch_code,
    render_switch_program,
    validate_switch_code,
)
from repro.schedulers import ListScheduler, UnifiedAssignAndSchedule
from repro.workloads import build_benchmark


def one_transfer_schedule(machine, src, dst):
    b = RegionBuilder("r")
    x = b.li(1.0)
    y = b.fadd(x, x)
    b.live_out(y)
    region = b.build()
    assignment = {x.uid: src, y.uid: dst, 2: dst}
    schedule = ListScheduler().schedule(region, machine, assignment=assignment)
    return region, schedule


class TestGeneration:
    def test_neighbour_transfer_ops(self, raw16):
        _, schedule = one_transfer_schedule(raw16, 0, 1)
        programs = generate_switch_code(schedule, raw16)
        (ev,) = schedule.comms
        # Source injects, destination ejects; no intermediate hops.
        (src_op,) = programs[0]
        (dst_op,) = programs[1]
        assert src_op.source is Port.PROC and src_op.sink is Port.EAST
        assert dst_op.source is Port.WEST and dst_op.sink is Port.PROC
        assert dst_op.cycle == src_op.cycle + 1
        assert src_op.cycle == ev.issue

    def test_corner_to_corner_route(self, raw16):
        _, schedule = one_transfer_schedule(raw16, 0, 15)
        programs = generate_switch_code(schedule, raw16)
        hops = [op for ops in programs.values() for op in ops]
        assert len(hops) == 7  # 6 hops + both endpoints share tiles
        assert validate_switch_code(programs, schedule, raw16) == []

    def test_forwarding_tiles_route_through(self, raw16):
        _, schedule = one_transfer_schedule(raw16, 0, 2)
        programs = generate_switch_code(schedule, raw16)
        (mid,) = programs[1]
        assert mid.source is Port.WEST and mid.sink is Port.EAST

    def test_empty_schedule(self, raw16):
        from repro.schedulers.schedule import Schedule

        programs = generate_switch_code(Schedule("r", raw16.name), raw16)
        assert all(ops == [] for ops in programs.values())

    def test_render_contains_route_lines(self, raw16):
        _, schedule = one_transfer_schedule(raw16, 0, 1)
        programs = generate_switch_code(schedule, raw16)
        text = render_switch_program(0, programs[0])
        assert "route" in text and "proc" in text


class TestValidation:
    def test_real_schedules_generate_clean_code(self, raw16):
        region = build_benchmark("jacobi", raw16).regions[0]
        for scheduler in (ConvergentScheduler(), UnifiedAssignAndSchedule()):
            schedule = scheduler.schedule(region, raw16)
            programs = generate_switch_code(schedule, raw16)
            assert validate_switch_code(programs, schedule, raw16) == []

    def test_detects_missing_transfer(self, raw16):
        _, schedule = one_transfer_schedule(raw16, 0, 5)
        programs = generate_switch_code(schedule, raw16)
        for ops in programs.values():
            ops.clear()
        errors = validate_switch_code(programs, schedule, raw16)
        assert any("no switch code" in e for e in errors)

    def test_detects_broken_hop_chain(self, raw16):
        _, schedule = one_transfer_schedule(raw16, 0, 2)
        programs = generate_switch_code(schedule, raw16)
        import dataclasses

        programs[1][0] = dataclasses.replace(programs[1][0], cycle=99)
        errors = validate_switch_code(programs, schedule, raw16)
        assert any("consecutive" in e for e in errors)

    def test_detects_port_conflict(self, raw16):
        _, schedule = one_transfer_schedule(raw16, 0, 2)
        programs = generate_switch_code(schedule, raw16)
        import dataclasses

        # Duplicate the injection op under a different transfer id: two
        # words now leave tile 0's east port in the same cycle.
        clash = dataclasses.replace(programs[0][0], transfer=99)
        programs[0].append(clash)
        errors = validate_switch_code(programs, schedule, raw16)
        assert any("carries two" in e for e in errors)

    def test_port_sharing_without_conflict_is_legal(self, raw16):
        """Distinct ports in one cycle = one wide switch instruction."""
        region = build_benchmark("life", raw16).regions[0]
        schedule = UnifiedAssignAndSchedule().schedule(region, raw16)
        programs = generate_switch_code(schedule, raw16)
        assert validate_switch_code(programs, schedule, raw16) == []

"""The static verification subsystem: diagnostics, the four checkers,
schedule corruptions, the differential campaign, the harness gate, the
sweep, and the CLI verb.

The calibration bar: every corruption kind in
:data:`repro.faults.corrupt.CORRUPTION_REGISTRY` must trigger exactly
the diagnostic codes it was built for, every registered pass must come
out of the contract analyzer clean, and real schedules from real
schedulers must verify with zero false positives.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.core import ConvergentScheduler, PreferenceMatrix
from repro.core.passes import PASS_REGISTRY, PassContext, SchedulingPass
from repro.core.passes.base import BASE_CONTRACTS, RESPECTS_SQUASHED
from repro.faults import (
    CORRUPTION_REGISTRY,
    EXPECTED_CODES,
    corrupt_schedule,
    make_fault,
    run_campaign,
    run_differential_campaign,
)
from repro.harness import run_region
from repro.harness.results import (
    program_result_from_dict,
    program_result_to_dict,
)
from repro.ir.ddg import DataDependenceGraph
from repro.ir.opcode import Opcode
from repro.machine import ClusteredVLIW, RawMachine
from repro.schedulers.base import Scheduler
from repro.schedulers.schedule import Schedule
from repro.sim import SimulationError
from repro.verify import (
    DIAGNOSTIC_CODES,
    ERROR,
    WARNING,
    Diagnostic,
    VerificationError,
    VerificationReport,
    analyze_pass,
    default_fixtures,
    make_diagnostic,
    run_sweep,
    scheduler_registry,
    verify_ddg,
    verify_matrix,
    verify_pass_contracts,
    verify_schedule,
)
from repro.workloads import build_benchmark


@pytest.fixture(scope="module")
def vliw():
    return ClusteredVLIW(4)


@pytest.fixture(scope="module")
def raw():
    return RawMachine(2, 2)


@pytest.fixture(scope="module")
def vliw_case(vliw):
    region = build_benchmark("vvmul", vliw).regions[0]
    schedule = ConvergentScheduler(seed=0).schedule(region, vliw)
    return region, vliw, schedule


@pytest.fixture(scope="module")
def raw_case(raw):
    region = build_benchmark("vvmul", raw).regions[0]
    schedule = ConvergentScheduler(seed=0).schedule(region, raw)
    return region, raw, schedule


@pytest.fixture(params=["vliw_case", "raw_case"])
def case(request):
    return request.getfixturevalue(request.param)


# ---------------------------------------------------------------------------
# Diagnostic model
# ---------------------------------------------------------------------------


class TestDiagnostics:
    def test_registry_blocks_match_checkers(self):
        blocks = {
            "1": "verify_ddg",
            "2": "verify_schedule",
            "3": "verify_matrix",
            "4": "verify_pass_contracts",
        }
        for code, spec in DIAGNOSTIC_CODES.items():
            assert code == spec.code
            assert code[0] == "V" and code[1:].isdigit() and len(code) == 4
            assert spec.checker == blocks[code[1]]
            assert spec.severity in (ERROR, WARNING)
            assert spec.title

    def test_make_diagnostic_rejects_unknown_code(self):
        with pytest.raises(KeyError, match="V999"):
            make_diagnostic("V999", "nope")

    def test_diagnostic_severity_and_render(self):
        diag = make_diagnostic("V206", "double booked", uid=3, cluster=1, cycle=7)
        assert diag.severity == ERROR
        assert diag.checker == "verify_schedule"
        rendered = diag.render()
        for fragment in ("V206", "ERROR", "uid=3", "cluster=1", "cycle=7"):
            assert fragment in rendered

    def test_report_ok_errors_warnings_codes(self):
        report = VerificationReport(subject="unit")
        assert report.ok
        report.add("V218", "warn only")
        assert report.ok and len(report.warnings) == 1
        report.add("V206", "boom", uid=1)
        report.add("V203", "negative")
        assert not report.ok and len(report.errors) == 2
        assert report.codes() == ["V203", "V206", "V218"]

    def test_report_merge(self):
        a = VerificationReport(subject="a")
        a.add("V301", "nan")
        b = VerificationReport(subject="b")
        b.add("V306", "zero")
        a.merge(b)
        assert a.codes() == ["V301", "V306"]

    def test_report_json_round_trip(self):
        report = VerificationReport(subject="rt", checker="verify_schedule")
        report.add("V208", "early", uid=4, cycle=2)
        report.add("V218", "makespan")
        data = json.loads(json.dumps(report.to_dict()))
        back = VerificationReport.from_dict(data)
        assert back.subject == "rt"
        assert back.codes() == report.codes()
        assert back.ok == report.ok
        assert [d.uid for d in back.diagnostics] == [4, None]

    def test_from_dict_rejects_wrong_kind(self):
        with pytest.raises(ValueError):
            VerificationReport.from_dict({"kind": "not_a_report"})

    def test_verification_error_message_carries_codes(self):
        report = VerificationReport(subject="r")
        report.add("V206", "x")
        err = VerificationError(report)
        assert err.report is report
        assert "V206" in str(err)


# ---------------------------------------------------------------------------
# verify_ddg (V1xx)
# ---------------------------------------------------------------------------


def _tiny_ddg():
    ddg = DataDependenceGraph(name="tiny")
    a = ddg.new_instruction(Opcode.LI, immediate=1.0)
    b = ddg.new_instruction(Opcode.LI, immediate=2.0)
    c = ddg.new_instruction(Opcode.ADD, operands=(a.uid, b.uid))
    ddg.new_instruction(Opcode.MUL, operands=(c.uid, a.uid))
    return ddg


class TestVerifyDDG:
    def test_clean_graph(self, case):
        region, machine, _ = case
        report = verify_ddg(region.ddg, machine)
        assert report.ok and report.codes() == []

    def test_cycle_is_v101(self):
        ddg = _tiny_ddg()
        ddg.add_dependence(3, 0, latency=0, kind="order")
        assert "V101" in verify_ddg(ddg).codes()

    def test_self_loop_is_v107(self):
        ddg = _tiny_ddg()
        ddg.add_dependence(2, 2, latency=0, kind="order")
        codes = verify_ddg(ddg).codes()
        assert "V107" in codes and "V101" in codes

    def test_negative_latency_is_v106(self):
        # The IR constructor rejects negative latencies, so smuggle one
        # past it the way a corrupted deserialization would.
        ddg = _tiny_ddg()
        edge = ddg.add_dependence(0, 3, latency=0, kind="order")
        object.__setattr__(edge, "latency", -1)
        assert "V106" in verify_ddg(ddg).codes()

    def test_mem_edge_on_non_memory_is_v104(self):
        ddg = _tiny_ddg()
        ddg.add_dependence(2, 3, latency=0, kind="mem")
        assert "V104" in verify_ddg(ddg).codes()

    def test_wrong_data_latency_is_v105_warning(self):
        ddg = _tiny_ddg()
        ddg.add_dependence(0, 3, latency=17, kind="data")
        report = verify_ddg(ddg)
        assert "V105" in report.codes()
        assert report.ok  # warning, not error

    def test_operand_without_edge_is_v102(self):
        ddg = _tiny_ddg()
        inst = ddg.instruction(3)
        ddg._instructions[3] = dataclasses.replace(
            inst, operands=inst.operands + (1,)
        )
        assert "V102" in verify_ddg(ddg).codes()

    def test_operand_of_non_defining_is_v103(self):
        ddg = DataDependenceGraph(name="store-read")
        a = ddg.new_instruction(Opcode.LI, immediate=1.0)
        st = ddg.new_instruction(Opcode.STORE, operands=(a.uid,), bank=0)
        ddg.new_instruction(Opcode.ADD, operands=(a.uid, st.uid))
        assert "V103" in verify_ddg(ddg).codes()

    def test_preplaced_out_of_range_is_v108(self, vliw):
        ddg = DataDependenceGraph(name="badhome")
        ddg.new_instruction(Opcode.LI, immediate=0.0, home_cluster=99)
        assert "V108" in verify_ddg(ddg, vliw).codes()
        assert verify_ddg(ddg).ok  # machine-dependent check needs a machine

    def test_hard_affinity_preplacement_conflict_is_v109(self, raw):
        assert raw.memory_affinity == "hard"
        home = raw.bank_home(0)
        wrong = (home + 1) % raw.n_clusters
        ddg = DataDependenceGraph(name="badbank")
        a = ddg.new_instruction(Opcode.LI, immediate=1.0)
        ddg.new_instruction(
            Opcode.STORE, operands=(a.uid,), bank=0, home_cluster=wrong
        )
        assert "V109" in verify_ddg(ddg, raw).codes()


# ---------------------------------------------------------------------------
# verify_schedule (V2xx)
# ---------------------------------------------------------------------------


class TestVerifySchedule:
    def test_clean_schedule(self, case):
        region, machine, schedule = case
        report = verify_schedule(region, machine, schedule)
        assert report.ok and report.codes() == []

    def test_missing_instruction_is_v201(self, vliw_case):
        region, machine, schedule = vliw_case
        corrupted = Schedule(
            region_name=schedule.region_name,
            machine_name=schedule.machine_name,
            ops=dict(schedule.ops),
            comms=list(schedule.comms),
        )
        victim = max(corrupted.ops)
        del corrupted.ops[victim]
        assert "V201" in verify_schedule(region, machine, corrupted).codes()

    def test_unknown_uid_is_v202(self, vliw_case):
        region, machine, schedule = vliw_case
        corrupted = Schedule(
            region_name=schedule.region_name,
            machine_name=schedule.machine_name,
            ops=dict(schedule.ops),
            comms=list(schedule.comms),
        )
        ghost = dataclasses.replace(corrupted.ops[0], uid=10_000)
        corrupted.ops[10_000] = ghost
        assert "V202" in verify_schedule(region, machine, corrupted).codes()

    def test_negative_start_is_v203(self, vliw_case):
        region, machine, schedule = vliw_case
        corrupted = Schedule(
            region_name=schedule.region_name,
            machine_name=schedule.machine_name,
            ops=dict(schedule.ops),
            comms=list(schedule.comms),
        )
        uid = next(iter(corrupted.ops))
        corrupted.ops[uid] = dataclasses.replace(corrupted.ops[uid], start=-2)
        assert "V203" in verify_schedule(region, machine, corrupted).codes()

    def test_invalid_unit_is_v207(self, vliw_case):
        region, machine, schedule = vliw_case
        corrupted = Schedule(
            region_name=schedule.region_name,
            machine_name=schedule.machine_name,
            ops=dict(schedule.ops),
            comms=list(schedule.comms),
        )
        uid = next(
            u for u, op in corrupted.ops.items()
            if op.unit >= 0 and not region.ddg.instruction(u).is_pseudo
        )
        corrupted.ops[uid] = dataclasses.replace(corrupted.ops[uid], unit=99)
        assert "V207" in verify_schedule(region, machine, corrupted).codes()

    def test_pseudo_on_unit_is_v217_warning(self, vliw):
        # fir's region carries live-in pseudo-ops (vvmul's does not).
        region = build_benchmark("fir", vliw).regions[0]
        machine = vliw
        schedule = ConvergentScheduler(seed=0).schedule(region, machine)
        corrupted = Schedule(
            region_name=schedule.region_name,
            machine_name=schedule.machine_name,
            ops=dict(schedule.ops),
            comms=list(schedule.comms),
        )
        uid = next(
            u for u in corrupted.ops if region.ddg.instruction(u).is_pseudo
        )
        corrupted.ops[uid] = dataclasses.replace(corrupted.ops[uid], unit=0)
        report = verify_schedule(region, machine, corrupted)
        assert "V217" in report.codes()
        assert report.ok  # warning severity

    def test_lying_makespan_is_v218_warning(self, vliw_case):
        region, machine, schedule = vliw_case

        class LyingSchedule(Schedule):
            @property
            def makespan(self):
                return super().makespan + 5

        corrupted = LyingSchedule(
            region_name=schedule.region_name,
            machine_name=schedule.machine_name,
            ops=dict(schedule.ops),
            comms=list(schedule.comms),
        )
        report = verify_schedule(region, machine, corrupted)
        assert "V218" in report.codes() and report.ok

    @pytest.mark.parametrize("kind", sorted(CORRUPTION_REGISTRY))
    def test_corruption_triggers_expected_code(self, case, kind):
        region, machine, schedule = case
        hits = 0
        for seed in range(6):
            rng = np.random.default_rng(seed)
            corrupted = corrupt_schedule(schedule, region, machine, kind, rng)
            if corrupted is None:
                continue
            hits += 1
            report = verify_schedule(region, machine, corrupted)
            assert not report.ok, kind
            assert set(report.codes()) & set(EXPECTED_CODES[kind]), (
                kind,
                report.codes(),
            )
        assert hits > 0, f"{kind} never applied to {machine.name} vvmul"

    def test_corruption_never_mutates_input(self, vliw_case):
        region, machine, schedule = vliw_case
        before_ops = dict(schedule.ops)
        before_comms = list(schedule.comms)
        rng = np.random.default_rng(0)
        for kind in sorted(CORRUPTION_REGISTRY):
            corrupt_schedule(schedule, region, machine, kind, rng)
        assert schedule.ops == before_ops
        assert schedule.comms == before_comms
        assert verify_schedule(region, machine, schedule).ok

    def test_unknown_corruption_kind_raises(self, vliw_case):
        region, machine, schedule = vliw_case
        with pytest.raises(KeyError):
            corrupt_schedule(
                schedule, region, machine, "no_such", np.random.default_rng(0)
            )


# ---------------------------------------------------------------------------
# verify_matrix (V3xx)
# ---------------------------------------------------------------------------


class TestVerifyMatrix:
    @pytest.fixture()
    def matrix(self, vliw_case):
        region, machine, _ = vliw_case
        m = PreferenceMatrix.for_region(region.ddg, machine.n_clusters)
        m.normalize()
        return m

    def test_clean_matrix(self, matrix, vliw_case):
        region, _, _ = vliw_case
        assert verify_matrix(matrix, ddg=region.ddg).ok

    @pytest.mark.parametrize(
        "value,code",
        [(np.nan, "V301"), (np.inf, "V302"), (-0.5, "V303"), (2.5, "V304")],
    )
    def test_bad_entry_codes(self, matrix, value, code):
        matrix.data[1, 0, 0] = value
        report = verify_matrix(matrix, check_normalization=False)
        assert code in report.codes()
        assert report.diagnostics[0].uid == 1

    def test_denormalized_row_is_v305(self, matrix):
        matrix.data[2] *= 1.5
        report = verify_matrix(matrix)
        assert report.codes() == ["V305"]
        assert not verify_matrix(matrix, check_normalization=False).diagnostics

    def test_zero_row_is_v306(self, matrix):
        matrix.data[3] = 0.0
        assert "V306" in verify_matrix(matrix).codes()

    def test_shape_mismatch_is_v307(self, matrix):
        other = DataDependenceGraph(name="other")
        other.new_instruction(Opcode.LI, immediate=0.0)
        report = verify_matrix(matrix, ddg=other)
        assert "V307" in report.codes() and report.ok


# ---------------------------------------------------------------------------
# Pass contracts (V4xx)
# ---------------------------------------------------------------------------


class TestPassContracts:
    def test_every_registered_pass_declares_contracts(self):
        for name, factory in PASS_REGISTRY.items():
            contracts = factory().contracts
            assert set(BASE_CONTRACTS) <= set(contracts), name

    def test_multiplicative_passes_declare_respects_squashed(self):
        declared = {
            name
            for name, factory in PASS_REGISTRY.items()
            if "respects_squashed" in factory().contracts
        }
        assert "COMM" not in declared
        assert "PATHPROP" not in declared
        assert {"PLACE", "FIRST", "PATH", "LOAD"} <= declared

    def test_all_registered_passes_are_clean(self):
        reports = verify_pass_contracts(seed=0)
        assert set(reports) == set(PASS_REGISTRY)
        bad = {name: r.codes() for name, r in reports.items() if not r.ok}
        assert not bad, bad

    @pytest.mark.parametrize(
        "kind,codes",
        [
            ("nan", {"V402"}),
            ("negative", {"V403"}),
            ("zero_row", {"V405"}),
            ("raise", {"V401"}),
        ],
    )
    def test_chaos_passes_earn_their_codes(self, kind, codes):
        report = analyze_pass(f"chaos:{kind}", lambda: make_fault(kind))
        assert not report.ok
        assert codes <= set(report.codes()), report.codes()

    def test_resurrecting_pass_earns_v404(self):
        class Resurrector(SchedulingPass):
            name = "RESURRECT"
            contracts = RESPECTS_SQUASHED

            def apply(self, ctx: PassContext) -> None:
                ctx.matrix.data[:] += 0.01
                ctx.matrix.touch()

        report = analyze_pass("resurrect", Resurrector)
        assert "V404" in report.codes()

    def test_nondeterministic_pass_earns_v406(self):
        calls = []

        class Flaky(SchedulingPass):
            name = "FLAKY"

            def apply(self, ctx: PassContext) -> None:
                calls.append(1)
                ctx.matrix.data[:] *= 1.0 + 0.01 * len(calls)
                ctx.matrix.touch()

        report = analyze_pass("flaky", Flaky, fixtures=default_fixtures()[:1])
        assert "V406" in report.codes()

    def test_ddg_mutation_earns_v407(self):
        class Mutator(SchedulingPass):
            name = "MUTATOR"

            def apply(self, ctx: PassContext) -> None:
                ctx.ddg.add_dependence(0, len(ctx.ddg) - 1, latency=0, kind="order")

        report = analyze_pass("mutator", Mutator, fixtures=default_fixtures()[:1])
        assert "V407" in report.codes()


# ---------------------------------------------------------------------------
# Differential campaign
# ---------------------------------------------------------------------------


class TestDifferential:
    def test_campaign_catches_everything(self, vliw):
        regions = [
            r
            for name in ("vvmul", "fir")
            for r in build_benchmark(name, vliw).regions
        ]
        report = run_differential_campaign(vliw, regions, n_trials=24, seed=11)
        assert report.ok
        assert report.n_trials == 24
        assert not report.false_positives
        assert {t.kind for t in report.trials} >= {"early_start", "wrong_latency"}
        assert "corruptions caught: 24/24" in report.render()

    def test_campaign_is_deterministic(self, raw):
        regions = build_benchmark("vvmul", raw).regions
        a = run_differential_campaign(raw, regions, n_trials=12, seed=5)
        b = run_differential_campaign(raw, regions, n_trials=12, seed=5)
        assert [(t.kind, t.codes) for t in a.trials] == [
            (t.kind, t.codes) for t in b.trials
        ]

    def test_campaign_requires_regions(self, vliw):
        with pytest.raises(ValueError):
            run_differential_campaign(vliw, [], n_trials=1)


# ---------------------------------------------------------------------------
# Harness gate
# ---------------------------------------------------------------------------


class _FixedScheduler(Scheduler):
    """Returns a pre-built schedule regardless of input."""

    name = "fixed"

    def __init__(self, schedule):
        self._schedule = schedule

    def schedule(self, region, machine):
        return self._schedule


class TestHarnessGate:
    def test_clean_region_is_verified(self, vliw_case):
        region, machine, _ = vliw_case
        result = run_region(
            region, machine, ConvergentScheduler(seed=0), verify=True
        )
        assert result.ok and result.verified is True
        assert result.diagnostics == []

    def test_ungated_region_has_no_verdict(self, vliw_case):
        region, machine, _ = vliw_case
        result = run_region(region, machine, ConvergentScheduler(seed=0))
        assert result.ok and result.verified is None

    def test_gate_fails_illegal_schedule(self, vliw_case, monkeypatch):
        region, machine, schedule = vliw_case
        corrupted = corrupt_schedule(
            schedule, region, machine, "wrong_latency", np.random.default_rng(1)
        )
        # Neutralize the simulator so the static verifier is the only
        # line of defense being exercised.
        from repro.sim.simulator import SimulationReport

        monkeypatch.setattr(
            "repro.harness.experiment.simulate",
            lambda *a, **k: SimulationReport(ok=True),
        )
        with pytest.raises(VerificationError, match="V205"):
            run_region(
                region, machine, _FixedScheduler(corrupted), verify=True
            )
        result = run_region(
            region,
            machine,
            _FixedScheduler(corrupted),
            verify=True,
            capture_errors=True,
        )
        assert not result.ok
        assert result.verified is False
        assert any(d.startswith("V205") for d in result.diagnostics)
        assert "VerificationError" in result.error

    def test_region_result_round_trips_verifier_fields(self, vliw_case):
        from repro.harness import run_program

        region, machine, _ = vliw_case
        program = build_benchmark("vvmul", machine)
        result = run_program(
            program, machine, ConvergentScheduler(seed=0), verify=True
        )
        data = json.loads(json.dumps(program_result_to_dict(result)))
        back = program_result_from_dict(data)
        assert [r.verified for r in back.regions] == [True]
        assert all(r.diagnostics == [] for r in back.regions)

    def test_chaos_campaign_with_verify_gate(self, vliw):
        regions = build_benchmark("vvmul", vliw).regions
        report = run_campaign(vliw, regions, n_trials=6, seed=2, verify=True)
        assert report.ok
        assert all(o.result.verified is True for o in report.outcomes)


# ---------------------------------------------------------------------------
# Sweep + CLI
# ---------------------------------------------------------------------------


class TestSweep:
    def test_registry_covers_all_schedulers(self):
        registry = scheduler_registry()
        assert set(registry) == {
            "anneal",
            "cars",
            "convergent",
            "fallback",
            "pcc",
            "rawcc",
            "single",
            "uas",
        }
        for factory in registry.values():
            assert isinstance(factory(), Scheduler)

    def test_representative_sweep_is_clean(self, vliw, raw):
        report = run_sweep(machines=[vliw, raw], benchmarks=["vvmul"])
        assert report.ok, report.render()
        assert len(report.verified) >= 14
        # Only the single-cluster baseline may decline (preplaced ops).
        assert {c.scheduler for c in report.skipped} <= {"single"}
        assert "verification sweep" in report.render()

    def test_sweep_flags_a_broken_scheduler(self, vliw):
        class Broken(Scheduler):
            name = "broken"

            def schedule(self, region, machine):
                good = ConvergentScheduler(seed=0).schedule(region, machine)
                return corrupt_schedule(
                    good, region, machine, "wrong_latency",
                    np.random.default_rng(0),
                )

        import repro.verify.sweep as sweep_mod

        registry = dict(scheduler_registry())
        registry["broken"] = Broken
        original = sweep_mod.scheduler_registry
        try:
            sweep_mod.scheduler_registry = lambda: registry
            report = run_sweep(
                machines=[vliw], benchmarks=["vvmul"], schedulers=["broken"]
            )
        finally:
            sweep_mod.scheduler_registry = original
        assert not report.ok
        assert report.failures[0].report.codes() == ["V205"]

    def test_sweep_records_crashes(self, vliw):
        class Crasher(Scheduler):
            name = "crasher"

            def schedule(self, region, machine):
                raise RuntimeError("kaboom")

        import repro.verify.sweep as sweep_mod

        registry = dict(scheduler_registry())
        registry["crasher"] = Crasher
        original = sweep_mod.scheduler_registry
        try:
            sweep_mod.scheduler_registry = lambda: registry
            report = run_sweep(
                machines=[vliw], benchmarks=["vvmul"], schedulers=["crasher"]
            )
        finally:
            sweep_mod.scheduler_registry = original
        assert not report.ok
        assert "kaboom" in report.failures[0].detail


class TestCLI:
    def test_verify_verb_clean(self, capsys, tmp_path):
        from repro.cli import main

        out = tmp_path / "verify.json"
        code = main(
            [
                "verify",
                "--machines",
                "vliw4",
                "--benchmarks",
                "vvmul",
                "--schedulers",
                "convergent,uas,rawcc",
                "--contracts",
                "--differential",
                "6",
                "--json",
                str(out),
            ]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "verification sweep" in captured
        assert "pass contracts: 12 passes analyzed, 0 violating" in captured
        assert "corruptions caught: 6/6" in captured
        payload = json.loads(out.read_text())
        assert {c["status"] for c in payload["sweep"]} == {"verified"}
        assert payload["differential"][0]["ok"] is True

    def test_verify_verb_exits_nonzero_on_error(self, capsys, monkeypatch):
        from repro.cli import main

        class Broken(Scheduler):
            name = "broken"

            def schedule(self, region, machine):
                good = ConvergentScheduler(seed=0).schedule(region, machine)
                return corrupt_schedule(
                    good, region, machine, "double_book",
                    np.random.default_rng(0),
                )

        import repro.verify.sweep as sweep_mod

        registry = dict(scheduler_registry())
        registry["broken"] = Broken
        monkeypatch.setattr(sweep_mod, "scheduler_registry", lambda: registry)
        code = main(
            [
                "verify",
                "--machines",
                "vliw4",
                "--benchmarks",
                "vvmul",
                "--schedulers",
                "broken",
            ]
        )
        assert code == 1
        assert "V206" in capsys.readouterr().out

"""Shared fixtures: machines, small hand-built regions, kernel programs."""

from __future__ import annotations

import pytest

from repro.ir import RegionBuilder
from repro.machine import ClusteredVLIW, RawMachine
from repro.workloads import apply_congruence, build_benchmark


@pytest.fixture
def vliw4():
    """The paper's evaluation VLIW: 4 identical clusters."""
    return ClusteredVLIW(4)


@pytest.fixture
def vliw1():
    """Single-cluster VLIW (speedup denominator)."""
    return ClusteredVLIW(1)


@pytest.fixture
def raw4():
    """A 2x2 Raw mesh."""
    return RawMachine(2, 2)


@pytest.fixture
def raw16():
    """The full 4x4 Raw prototype."""
    return RawMachine(4, 4)


def build_dot_region(n: int = 4, banks: int = 4, name: str = "dot"):
    """A dot product: 2n loads, n fmuls, a reduction tree, one live-out."""
    b = RegionBuilder(name)
    xs = [b.load(bank=i % banks, name=f"x[{i}]", array="x") for i in range(n)]
    ys = [b.load(bank=i % banks, name=f"y[{i}]", array="y") for i in range(n)]
    prods = [b.fmul(x, y) for x, y in zip(xs, ys)]
    b.live_out(b.reduce(prods))
    return b.build()


def build_chain_region(length: int = 6, name: str = "chain"):
    """A pure serial chain: one live-in followed by ``length`` fadds."""
    b = RegionBuilder(name)
    v = b.live_in(name="v0")
    one = b.li(1.0)
    for _ in range(length):
        v = b.fadd(v, one)
    b.live_out(v)
    return b.build()


@pytest.fixture
def dot_region():
    return build_dot_region()


@pytest.fixture
def chain_region():
    return build_chain_region()


@pytest.fixture
def mxm_vliw(vliw4):
    """The mxm kernel bound to the 4-cluster VLIW."""
    return build_benchmark("mxm", vliw4).regions[0]


@pytest.fixture
def jacobi_raw(raw4):
    """The jacobi kernel bound to a 2x2 Raw mesh."""
    return build_benchmark("jacobi", raw4).regions[0]

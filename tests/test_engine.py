"""Equivalence suite for the compilation engine.

The engine's contract is *cycle-identity*: running the harness through
a worker pool (``jobs>1``) or through the content-addressed schedule
cache must produce exactly the numbers the classic serial path
produces.  This suite pins that contract for every registered
scheduler, on both machine models, over the full workload suites —
comparing serialized :class:`~repro.harness.experiment.ProgramResult`
objects modulo wall-clock timing, and raw schedules op for op.
"""

from __future__ import annotations

import copy

import pytest

from repro.engine import (
    CACHE_HIT,
    CompilationEngine,
    RegionTask,
    ScheduleCache,
)
from repro.harness import run_program
from repro.harness.results import program_result_to_dict
from repro.machine import ClusteredVLIW, RawMachine
from repro.verify.sweep import scheduler_registry
from repro.workloads import RAW_SUITE, VLIW_SUITE, build_benchmark

MACHINES = {
    "raw4x4": RawMachine(4, 4),
    "vliw4": ClusteredVLIW(4),
}
SCHEDULERS = sorted(scheduler_registry())


def suite_for(machine_key):
    """The paper suite evaluated on the given machine."""
    return RAW_SUITE if machine_key.startswith("raw") else VLIW_SUITE


def make_scheduler(name):
    """Fresh default-configured scheduler from the registry."""
    return scheduler_registry()[name]()


def scrubbed(result):
    """``ProgramResult`` as a dict with wall-clock fields neutralized.

    ``compile_seconds`` is genuine elapsed time and differs between any
    two runs; everything else must match exactly.  Metrics are compared
    separately (they embed timing histograms).
    """
    data = copy.deepcopy(program_result_to_dict(result))
    data["compile_seconds"] = 0.0
    data["metrics"] = None
    for region in data["regions"]:
        region["compile_seconds"] = 0.0
    return data


#: Memoized serial ground truth: (scheduler, machine) -> (results, cache).
#: The serial pass runs cold *through* a cache so the warm-rerun tests
#: can replay it without paying a second full compile of the grid.
_SERIAL = {}


def serial_ground_truth(scheduler_name, machine_key):
    """Serial full-suite results plus the cache the cold run populated."""
    key = (scheduler_name, machine_key)
    if key not in _SERIAL:
        machine = MACHINES[machine_key]
        cache = ScheduleCache()
        results = {}
        for benchmark in suite_for(machine_key):
            program = build_benchmark(benchmark, machine)
            results[benchmark] = scrubbed(
                run_program(
                    program, machine, make_scheduler(scheduler_name),
                    check_values=False, cache=cache,
                )
            )
        _SERIAL[key] = (results, cache)
    return _SERIAL[key]


@pytest.fixture(scope="module")
def engine2():
    """One warm two-worker pool shared by the whole module."""
    with CompilationEngine(jobs=2) as engine:
        yield engine


class TestParallelEqualsSerial:
    """jobs=2 over the full grid; jobs=4 for the paper scheduler."""

    @pytest.mark.parametrize("machine_key", sorted(MACHINES))
    @pytest.mark.parametrize("scheduler_name", SCHEDULERS)
    def test_jobs2_matches_serial(self, scheduler_name, machine_key, engine2):
        expected, _ = serial_ground_truth(scheduler_name, machine_key)
        machine = MACHINES[machine_key]
        for benchmark in suite_for(machine_key):
            program = build_benchmark(benchmark, machine)
            parallel = run_program(
                program, machine, make_scheduler(scheduler_name),
                check_values=False, engine=engine2,
            )
            assert scrubbed(parallel) == expected[benchmark], (
                f"{scheduler_name}/{machine_key}/{benchmark}: "
                "jobs=2 diverged from serial"
            )

    @pytest.mark.parametrize("machine_key", sorted(MACHINES))
    def test_jobs4_convergent_matches_serial(self, machine_key):
        expected, _ = serial_ground_truth("convergent", machine_key)
        machine = MACHINES[machine_key]
        with CompilationEngine(jobs=4) as engine:
            for benchmark in suite_for(machine_key):
                program = build_benchmark(benchmark, machine)
                parallel = run_program(
                    program, machine, make_scheduler("convergent"),
                    check_values=False, engine=engine,
                )
                assert scrubbed(parallel) == expected[benchmark]

    def test_value_checked_path_matches_serial(self, engine2):
        """The interpreter-replay path survives the pool too."""
        machine = MACHINES["vliw4"]
        program = build_benchmark("mxm", machine)
        serial = run_program(
            program, machine, make_scheduler("convergent"), check_values=True,
        )
        parallel = run_program(
            program, machine, make_scheduler("convergent"), check_values=True,
            engine=engine2,
        )
        assert scrubbed(parallel) == scrubbed(serial)

    def test_metrics_counters_match_serial(self, engine2):
        """Counter metrics (not timing histograms) are jobs-invariant."""
        from repro.observability.metrics import MetricsRegistry

        machine = MACHINES["raw4x4"]
        program = build_benchmark("jacobi", machine)
        snapshots = []
        for engine in (None, engine2):
            registry = MetricsRegistry()
            run_program(
                program, machine, make_scheduler("convergent"),
                check_values=False, registry=registry, engine=engine,
            )
            snapshots.append(registry.snapshot())
        serial, parallel = snapshots
        assert serial["counters"] == parallel["counters"]
        # Histogram *counts* must agree as well; values may be timing.
        assert {k: v["count"] for k, v in serial["histograms"].items()} == {
            k: v["count"] for k, v in parallel["histograms"].items()
        }


class TestSchedulesIdentical:
    """Beyond cycle counts: the schedules themselves are op-identical."""

    @staticmethod
    def _flatten(schedule):
        ops = sorted(
            (op.uid, op.cluster, op.unit, op.start, op.latency)
            for op in schedule.ops.values()
        )
        comms = sorted(
            (c.producer_uid, c.src, c.dst, c.issue, c.arrival,
             tuple(c.resources))
            for c in schedule.comms
        )
        return ops, comms

    @pytest.mark.parametrize("scheduler_name", ["convergent", "rawcc", "uas"])
    def test_serial_and_parallel_schedules_identical(
        self, scheduler_name, engine2
    ):
        machine = MACHINES["raw4x4"]
        program = build_benchmark("mxm", machine)
        tasks = [
            RegionTask(
                index=i, region=region, machine=machine,
                scheduler=make_scheduler(scheduler_name),
                check_values=False, capture_errors=True,
            )
            for i, region in enumerate(program.regions)
        ]
        with CompilationEngine(jobs=1) as serial_engine:
            serial = serial_engine.run_tasks(copy.deepcopy(tasks))
        parallel = engine2.run_tasks(copy.deepcopy(tasks))
        assert len(serial) == len(parallel) == len(program.regions)
        for s, p in zip(serial, parallel):
            assert s.index == p.index
            assert s.schedule is not None and p.schedule is not None
            assert self._flatten(s.schedule) == self._flatten(p.schedule)


class TestCacheEquivalence:
    """Warm reruns replay the cold run's numbers exactly."""

    @pytest.mark.parametrize("machine_key", sorted(MACHINES))
    @pytest.mark.parametrize("scheduler_name", SCHEDULERS)
    def test_warm_rerun_matches_cold(self, scheduler_name, machine_key):
        expected, cache = serial_ground_truth(scheduler_name, machine_key)
        machine = MACHINES[machine_key]
        before = cache.stats.to_dict()
        ok_regions = 0
        for benchmark in suite_for(machine_key):
            program = build_benchmark(benchmark, machine)
            warm = run_program(
                program, machine, make_scheduler(scheduler_name),
                check_values=False, cache=cache,
            )
            assert scrubbed(warm) == expected[benchmark], (
                f"{scheduler_name}/{machine_key}/{benchmark}: "
                "warm cache rerun diverged from cold run"
            )
            ok_regions += sum(1 for r in warm.regions if r.ok)
        after = cache.stats.to_dict()
        # Every region that succeeded cold was stored, so the warm pass
        # must serve every one of them from the cache.
        assert after["hits"] - before["hits"] == ok_regions
        assert after["stores"] == before["stores"]

    def test_parallel_cached_matches_serial(self):
        """A parallel run *through* a cache (cold and warm passes) still
        matches the serial ground truth; per-worker memory caches can
        change hit counts, never numbers."""
        expected, _ = serial_ground_truth("convergent", "vliw4")
        machine = MACHINES["vliw4"]
        cache = ScheduleCache()
        with CompilationEngine(jobs=2, cache=cache) as engine:
            for _ in range(2):  # cold, then (possibly) warm
                for benchmark in suite_for("vliw4"):
                    program = build_benchmark(benchmark, machine)
                    result = run_program(
                        program, machine, make_scheduler("convergent"),
                        check_values=False, engine=engine,
                    )
                    assert scrubbed(result) == expected[benchmark]

    def test_disk_cache_round_trip(self, tmp_path):
        """A disk-backed cache survives a fresh process-independent
        cache object and still replays identical results."""
        machine = MACHINES["vliw4"]
        program = build_benchmark("fir", machine)
        cold_cache = ScheduleCache(disk_dir=tmp_path)
        cold = run_program(
            program, machine, make_scheduler("convergent"),
            check_values=False, cache=cold_cache,
        )
        warm_cache = ScheduleCache(disk_dir=tmp_path)
        warm = run_program(
            program, machine, make_scheduler("convergent"),
            check_values=False, cache=warm_cache,
        )
        assert scrubbed(warm) == scrubbed(cold)
        assert warm_cache.stats.hits == sum(1 for r in cold.regions if r.ok)

    def test_cache_hit_outcome_flagged(self):
        """run_tasks reports hit/miss status and replayed schedules."""
        machine = MACHINES["vliw4"]
        region = build_benchmark("vvmul", machine).regions[0]
        cache = ScheduleCache()
        task = RegionTask(
            index=0, region=region, machine=machine,
            scheduler=make_scheduler("convergent"), check_values=False,
        )
        with CompilationEngine(jobs=1, cache=cache) as engine:
            cold = engine.run_tasks([copy.deepcopy(task)])[0]
            warm = engine.run_tasks([copy.deepcopy(task)])[0]
        assert cold.cache_status == "miss"
        assert warm.cache_status == CACHE_HIT
        assert warm.result.cycles == cold.result.cycles
        assert TestSchedulesIdentical._flatten(
            warm.schedule
        ) == TestSchedulesIdentical._flatten(cold.schedule)


class TestNoLostRegions:
    """Index-keyed merge: every region yields exactly one result."""

    @pytest.mark.parametrize("machine_key", sorted(MACHINES))
    def test_region_result_association_by_index(self, machine_key, engine2):
        machine = MACHINES[machine_key]
        for benchmark in suite_for(machine_key)[:2]:
            program = build_benchmark(benchmark, machine)
            result = run_program(
                program, machine, make_scheduler("convergent"),
                check_values=False, engine=engine2,
            )
            assert [r.region_name for r in result.regions] == [
                region.name for region in program.regions
            ]

    def test_declining_scheduler_equivalence(self, engine2):
        """Captured per-region failures (a scheduler declining) merge
        identically in serial and parallel mode — and the single-cluster
        baseline genuinely declines on Raw, so the failure path is
        actually exercised, not vacuously green."""
        expected, _ = serial_ground_truth("single", "raw4x4")
        machine = MACHINES["raw4x4"]
        statuses = set()
        for benchmark in suite_for("raw4x4"):
            program = build_benchmark(benchmark, machine)
            parallel = run_program(
                program, machine, make_scheduler("single"),
                check_values=False, engine=engine2,
            )
            assert scrubbed(parallel) == expected[benchmark]
            statuses.update(r.status for r in parallel.regions)
        assert "failed" in statuses


class TestResilienceEquivalence:
    """Resilience on, nothing misbehaving: output identical to legacy.

    The resilient execution path (waves, budgets, breaker routing) must
    be invisible when nothing trips — serial, ``jobs=N``, and the
    legacy engine all report byte-identical results — and when a chain
    primary *does* fail, the outcome must say exactly how far down the
    chain the result came from.
    """

    def _chain(self, raising=False):
        from repro.core import ConvergentScheduler
        from repro.faults import make_fault
        from repro.schedulers import (
            FallbackChain,
            SingleClusterScheduler,
            UnifiedAssignAndSchedule,
        )

        passes = [make_fault("raise")] if raising else None
        return FallbackChain(
            [
                ConvergentScheduler(passes=passes, seed=0, guard=False),
                UnifiedAssignAndSchedule(),
                SingleClusterScheduler(),
            ]
        )

    def _config(self, **overrides):
        from repro.engine import ResilienceConfig, RetryPolicy

        defaults = dict(
            deadline_s=30.0,
            retry=RetryPolicy(base_delay_s=0.0),
        )
        defaults.update(overrides)
        return ResilienceConfig(**defaults)

    def test_happy_path_serial_equals_jobs2_equals_legacy(self):
        machine = MACHINES["vliw4"]
        program = build_benchmark("mxm", machine)
        legacy = scrubbed(
            run_program(
                program, machine, make_scheduler("convergent"),
                check_values=False,
            )
        )
        resilient_serial = scrubbed(
            run_program(
                program, machine, make_scheduler("convergent"),
                check_values=False, resilience=self._config(),
            )
        )
        with CompilationEngine(jobs=2, resilience=self._config()) as engine:
            resilient_parallel = scrubbed(
                run_program(
                    program, machine, make_scheduler("convergent"),
                    check_values=False, engine=engine,
                )
            )
        assert resilient_serial == legacy
        assert resilient_parallel == legacy

    def test_degradation_level_reported_accurately(self):
        from repro.engine import RegionTask

        machine = MACHINES["vliw4"]
        program = build_benchmark("vvmul", machine)
        with CompilationEngine(jobs=1, resilience=self._config()) as engine:
            outcomes = engine.run_tasks(
                [
                    RegionTask(
                        index=0, region=program.regions[0], machine=machine,
                        scheduler=self._chain(raising=True), check_values=False,
                    ),
                    RegionTask(
                        index=1, region=program.regions[0], machine=machine,
                        scheduler=self._chain(raising=False), check_values=False,
                    ),
                ]
            )
        degraded, clean = outcomes
        assert degraded.result.ok and degraded.degradation_level == 1
        assert clean.result.ok and clean.degradation_level == 0
        assert not degraded.timed_out and not clean.timed_out

    def test_degraded_results_still_verify_clean(self):
        machine = MACHINES["vliw4"]
        program = build_benchmark("vvmul", machine)
        result = run_program(
            program, machine, self._chain(raising=True),
            check_values=False, verify=True, resilience=self._config(),
        )
        assert result.ok
        assert all(r.verified for r in result.regions)

    def test_breaker_trips_and_routes_consecutive_failures(self):
        from repro.engine import RegionTask

        machine = MACHINES["vliw4"]
        program = build_benchmark("vvmul", machine)
        config = self._config(breaker_threshold=2, breaker_cooldown=2)
        tasks = [
            RegionTask(
                index=i, region=program.regions[0], machine=machine,
                scheduler=self._chain(raising=True), check_values=False,
            )
            for i in range(5)
        ]
        with CompilationEngine(jobs=1, resilience=config) as engine:
            outcomes = engine.run_tasks(tasks)
            counters = dict(engine.telemetry.counters)
        assert all(o.result.ok for o in outcomes)
        assert all(o.degradation_level == 1 for o in outcomes)
        # Tasks 0-1 trip the breaker; task 2 is routed (min_level=1);
        # task 3 exhausts the cooldown as a half-open probe and fails,
        # re-tripping; task 4 is routed again.
        assert counters["resilience.breaker_trips"] == 2
        assert counters["resilience.breaker_routed"] == 2
        assert counters["resilience.breaker_probes"] == 1

    def test_resilient_jobs2_chain_storm_matches_serial(self):
        """Chain-wrapped chaos through a resilient pool: identical to
        a resilient serial run, region for region."""
        machine = MACHINES["vliw4"]
        program = build_benchmark("fir", machine)
        serial = run_program(
            program, machine, self._chain(raising=True),
            check_values=False, resilience=self._config(),
        )
        with CompilationEngine(jobs=2, resilience=self._config()) as engine:
            parallel = run_program(
                program, machine, self._chain(raising=True),
                check_values=False, engine=engine,
            )
        assert scrubbed(parallel) == scrubbed(serial)

"""Benchmark-snapshot subsystem tests.

Covers the acceptance properties of the bench layer: the snapshot
schema round-trips and validates, quality fields are deterministic
across runs, the compare engine classifies improved/regressed/neutral
cells (including threshold edges and one-sided cells), trace diffs
align hand-built traces, and the CLI verbs behave (including the
nonzero exit on an artificially degraded snapshot).
"""

import json

import pytest

from repro.cli import main
from repro.harness.measure import Measurement, measure_program, median
from repro.machine import ClusteredVLIW
from repro.observability.bench import (
    BenchCell,
    BenchSnapshot,
    SCHEMA_VERSION,
    baseline_machine,
    environment_fingerprint,
    latest_snapshot_path,
    next_snapshot_path,
    run_bench,
    snapshot_paths,
    validate_snapshot,
)
from repro.observability.diff import (
    ADDED,
    IMPROVED,
    NEUTRAL,
    REGRESSED,
    REMOVED,
    align_traces,
    compare_snapshots,
    render_trace_diff,
)
from repro.observability.render import render_profile
from repro.observability.tracer import KIND_SPAN, TraceRecord, Tracer
from repro.schedulers import UnifiedAssignAndSchedule
from repro.workloads import build_benchmark


def small_bench(**overrides):
    """A fast two-scheduler bench run on the 2-cluster VLIW."""
    kwargs = dict(
        machines=[ClusteredVLIW(2)],
        benchmarks=["vvmul"],
        schedulers=["convergent", "uas"],
        repeats=1,
    )
    kwargs.update(overrides)
    return run_bench(**kwargs)


@pytest.fixture(scope="module")
def snapshot():
    return small_bench()


def make_cell(benchmark="vvmul", machine="vliw2", scheduler="convergent",
              cycles=50, transfers=30, speedup=1.5, status="ok",
              compile_seconds=0.05):
    """Hand-built cell for compare-engine tests."""
    return BenchCell(
        benchmark=benchmark,
        machine=machine,
        scheduler=scheduler,
        quality={
            "cycles": cycles,
            "transfers": transfers,
            "speedup": speedup,
            "utilization": 0.3,
            "comm_busy": transfers,
            "status": status,
        },
        cost={
            "compile_seconds": compile_seconds,
            "runs": [compile_seconds],
            "timing_noisy": False,
            "phase_seconds": {},
        },
    )


def make_snapshot(cells, snapshot_id=0):
    """Hand-built snapshot wrapping ``cells``."""
    return BenchSnapshot(
        snapshot_id=snapshot_id,
        environment=environment_fingerprint(),
        config={"tier": "test", "repeats": 1, "seed": 0},
        cells=cells,
    )


class TestSnapshotSchema:
    def test_round_trip_is_lossless(self, snapshot):
        data = snapshot.to_dict()
        back = BenchSnapshot.from_dict(data)
        assert back.to_dict() == data

    def test_save_load(self, snapshot, tmp_path):
        path = tmp_path / "BENCH_9.json"
        snapshot.save(path)
        assert BenchSnapshot.load(path).to_dict() == snapshot.to_dict()

    def test_fresh_snapshot_is_schema_valid(self, snapshot):
        assert validate_snapshot(snapshot.to_dict()) == []

    def test_covers_requested_matrix(self, snapshot):
        keys = set(snapshot.cell_map())
        # single is always added as the speedup baseline.
        assert keys == {
            ("vvmul", "vliw2", "convergent"),
            ("vvmul", "vliw2", "uas"),
            ("vvmul", "vliw2", "single"),
        }
        for cell in snapshot.cells:
            assert cell.quality["status"] == "ok"
            assert cell.quality["cycles"] > 0

    def test_speedup_is_relative_to_single(self, snapshot):
        cells = snapshot.cell_map()
        base = cells[("vvmul", "vliw2", "single")].quality["cycles"]
        conv = cells[("vvmul", "vliw2", "convergent")].quality
        assert cells[("vvmul", "vliw2", "single")].quality["speedup"] == 1.0
        assert conv["speedup"] == pytest.approx(base / conv["cycles"], abs=1e-4)

    def test_environment_fingerprint_fields(self, snapshot):
        for key in ("python", "platform", "numpy", "git_sha"):
            assert key in snapshot.environment

    def test_validator_rejects_bad_payloads(self, snapshot):
        assert validate_snapshot([]) == ["snapshot is not a JSON object"]
        data = snapshot.to_dict()
        data["schema_version"] = SCHEMA_VERSION + 1
        assert any("schema_version" in p for p in validate_snapshot(data))
        data = snapshot.to_dict()
        data["kind"] = "nonsense"
        assert any("kind" in p for p in validate_snapshot(data))
        data = snapshot.to_dict()
        del data["cells"][0]["quality"]["cycles"]
        assert any("cycles" in p for p in validate_snapshot(data))
        data = snapshot.to_dict()
        data["cells"].append(dict(data["cells"][0]))
        assert any("duplicate" in p for p in validate_snapshot(data))
        data = snapshot.to_dict()
        data["cells"] = []
        assert any("cells" in p for p in validate_snapshot(data))

    def test_validator_rejects_wrong_quality_type(self, snapshot):
        data = snapshot.to_dict()
        data["cells"][0]["quality"]["cycles"] = "fast"
        assert any("wrong type" in p for p in validate_snapshot(data))


class TestDeterminism:
    def test_quality_fields_identical_across_runs(self, snapshot):
        again = small_bench()
        a = {c.key: c.quality for c in snapshot.cells}
        b = {c.key: c.quality for c in again.cells}
        assert a == b

    def test_quality_json_is_byte_identical(self, snapshot):
        again = small_bench()
        dump = lambda snap: json.dumps(
            [{**c.to_dict(), "cost": None} for c in snap.cells], sort_keys=True
        )
        assert dump(snapshot) == dump(again)


class TestSnapshotDiscovery:
    def test_numbering(self, tmp_path):
        assert snapshot_paths(tmp_path) == []
        assert latest_snapshot_path(tmp_path) is None
        assert next_snapshot_path(tmp_path).name == "BENCH_1.json"
        (tmp_path / "BENCH_1.json").write_text("{}")
        (tmp_path / "BENCH_3.json").write_text("{}")
        (tmp_path / "BENCH_notanumber.json").write_text("{}")
        assert [p.name for p in snapshot_paths(tmp_path)] == [
            "BENCH_1.json", "BENCH_3.json"
        ]
        assert latest_snapshot_path(tmp_path).name == "BENCH_3.json"
        assert next_snapshot_path(tmp_path).name == "BENCH_4.json"

    def test_baseline_machine_family(self):
        from repro.machine import raw_with_tiles

        assert baseline_machine(raw_with_tiles(16)).n_clusters == 1
        assert baseline_machine(ClusteredVLIW(4)).n_clusters == 1


class TestCompareEngine:
    def test_identical_snapshots_are_neutral_and_ok(self):
        a = make_snapshot([make_cell()])
        b = make_snapshot([make_cell()])
        comparison = compare_snapshots(a, b)
        assert [d.verdict for d in comparison.deltas] == [NEUTRAL]
        assert comparison.ok

    def test_cycle_increase_regresses_and_gates(self):
        a = make_snapshot([make_cell(cycles=50)], snapshot_id=1)
        b = make_snapshot([make_cell(cycles=51)], snapshot_id=2)
        comparison = compare_snapshots(a, b)
        assert [d.verdict for d in comparison.deltas] == [REGRESSED]
        assert not comparison.ok
        assert "QUALITY REGRESSION" in comparison.render()
        assert "BENCH_1" in comparison.render() and "BENCH_2" in comparison.render()

    def test_cycle_decrease_improves(self):
        a = make_snapshot([make_cell(cycles=50)])
        b = make_snapshot([make_cell(cycles=49)])
        comparison = compare_snapshots(a, b)
        assert [d.verdict for d in comparison.deltas] == [IMPROVED]
        assert comparison.ok

    def test_quality_is_exact_match_gated(self):
        # Even a one-transfer change with equal cycles is not neutral.
        a = make_snapshot([make_cell(transfers=30)])
        b = make_snapshot([make_cell(transfers=31)])
        comparison = compare_snapshots(a, b)
        assert [d.verdict for d in comparison.deltas] == [REGRESSED]

    def test_status_degradation_regresses(self):
        # A failing schedule regresses even when its cycle count drops.
        a = make_snapshot([make_cell(cycles=50, status="ok")])
        b = make_snapshot([make_cell(cycles=0, status="failed")])
        comparison = compare_snapshots(a, b)
        assert [d.verdict for d in comparison.deltas] == [REGRESSED]

    def test_timing_threshold_edges(self):
        a = make_snapshot([make_cell(compile_seconds=0.100)])
        exactly = make_snapshot([make_cell(compile_seconds=0.120)])
        above = make_snapshot([make_cell(compile_seconds=0.1201)])
        at_edge = compare_snapshots(a, exactly, timing_tolerance=0.2).deltas[0]
        past_edge = compare_snapshots(a, above, timing_tolerance=0.2).deltas[0]
        assert not at_edge.timing_flagged  # exactly at tolerance: neutral
        assert past_edge.timing_flagged
        # Timing never affects the quality verdict or the gate.
        assert past_edge.verdict == NEUTRAL
        assert compare_snapshots(a, above).ok

    def test_added_and_removed_cells_do_not_gate(self):
        a = make_snapshot([make_cell(benchmark="vvmul")])
        b = make_snapshot([make_cell(benchmark="fir")])
        comparison = compare_snapshots(a, b)
        verdicts = sorted(d.verdict for d in comparison.deltas)
        assert verdicts == sorted([ADDED, REMOVED])
        assert comparison.ok

    def test_markdown_report_lists_every_cell(self):
        a = make_snapshot([make_cell(), make_cell(scheduler="uas")])
        b = make_snapshot([make_cell(cycles=60), make_cell(scheduler="uas")])
        text = compare_snapshots(a, b).to_markdown()
        assert text.count("| vvmul |") == 2
        assert "regressed" in text and "QUALITY REGRESSION" in text


def pass_span(name, start, duration, **fields):
    """A hand-built ``pass:<NAME>`` span record."""
    return TraceRecord(
        kind=KIND_SPAN, name=f"pass:{name}", start_s=start,
        duration_s=duration, depth=1, fields=fields,
    )


class TestTraceDiff:
    def make_trace(self, specs):
        return [
            pass_span(name, i * 1.0, 0.001, l1_churn=churn,
                      mean_entropy=0.5, mean_confidence=2.0)
            for i, (name, churn) in enumerate(specs)
        ]

    def test_identical_traces_fully_align(self):
        a = self.make_trace([("NOISE", 0.1), ("PATH", 0.2), ("COMM", 0.3)])
        pairs = align_traces(a, a)
        assert len(pairs) == 3
        assert all(x is not None and y is not None for x, y in pairs)
        text = render_trace_diff(a, a)
        assert "traces agree" in text

    def test_missing_pass_becomes_one_sided_row(self):
        a = self.make_trace([("NOISE", 0.1), ("PATH", 0.2), ("COMM", 0.3)])
        b = self.make_trace([("NOISE", 0.1), ("COMM", 0.3)])
        pairs = align_traces(a, b)
        assert len(pairs) == 3
        one_sided = [(x, y) for x, y in pairs if y is None]
        assert len(one_sided) == 1
        assert one_sided[0][0].name == "pass:PATH"
        text = render_trace_diff(a, b, label_a="old", label_b="new")
        assert "1/3" in text.splitlines()[-1] or "diverge" in text

    def test_changed_churn_reported_as_divergence(self):
        a = self.make_trace([("NOISE", 0.1), ("COMM", 0.3)])
        b = self.make_trace([("NOISE", 0.1), ("COMM", 0.9)])
        text = render_trace_diff(a, b)
        assert "+0.6000" in text
        assert "1/2 pass rows diverge" in text

    def test_align_on_real_convergence_traces(self):
        from repro.core import ConvergentScheduler

        machine = ClusteredVLIW(2)
        region = build_benchmark("vvmul", machine).regions[0]
        tracer_a, tracer_b = Tracer(), Tracer()
        ConvergentScheduler(seed=0, tracer=tracer_a).converge(region, machine)
        ConvergentScheduler(seed=1, tracer=tracer_b).converge(region, machine)
        pairs = align_traces(tracer_a.records, tracer_b.records)
        assert pairs and all(a is not None and b is not None for a, b in pairs)
        render_trace_diff(tracer_a.records, tracer_b.records)


class TestMeasure:
    def test_median(self):
        assert median([]) == 0.0
        assert median([3.0]) == 3.0
        assert median([1.0, 9.0, 2.0]) == 2.0
        assert median([1.0, 2.0, 3.0, 10.0]) == 2.5

    def test_noisy_timer_guard(self):
        quiet = Measurement(result=None, compile_seconds_runs=[0.10, 0.11, 0.105])
        noisy = Measurement(result=None, compile_seconds_runs=[0.10, 0.30, 0.11])
        single = Measurement(result=None, compile_seconds_runs=[0.10])
        assert not quiet.timing_noisy
        assert noisy.timing_noisy
        assert not single.timing_noisy  # one run: spread undefined

    def test_measure_program_collects_phases_and_repeats(self):
        machine = ClusteredVLIW(2)
        program = build_benchmark("vvmul", machine)
        measurement = measure_program(
            program, machine, UnifiedAssignAndSchedule(), repeats=2
        )
        assert len(measurement.compile_seconds_runs) == 2
        assert measurement.compile_seconds > 0
        assert measurement.phase_seconds["simulate"] > 0
        # UAS emits no convergence passes: pass metrics stay None.
        assert measurement.churn_total is None
        assert measurement.result.metrics is not None

    def test_measure_program_convergent_pass_metrics(self):
        from repro.core import ConvergentScheduler

        machine = ClusteredVLIW(2)
        program = build_benchmark("vvmul", machine)
        measurement = measure_program(
            program, machine, ConvergentScheduler(seed=0), repeats=1
        )
        assert measurement.phase_seconds["converge"] > 0
        assert measurement.phase_seconds["passes"] > 0
        assert measurement.churn_total > 0
        assert measurement.final_confidence > 0

    def test_measure_program_rejects_zero_repeats(self):
        machine = ClusteredVLIW(2)
        program = build_benchmark("vvmul", machine)
        with pytest.raises(ValueError):
            measure_program(program, machine, UnifiedAssignAndSchedule(), repeats=0)


class TestProfileResidual:
    def test_other_row_makes_shares_sum_to_100(self):
        tracer = Tracer()
        with tracer.span("converge"):
            pass
        tracer.records[0].duration_s = 0.6
        text = render_profile(tracer.records, wall_seconds=1.0)
        assert "other" in text
        assert "60.0%" in text and "40.0%" in text
        assert "total (top-level)" in text
        assert "total (wall)" in text

    def test_no_residual_row_without_wall(self):
        tracer = Tracer()
        with tracer.span("converge"):
            pass
        tracer.records[0].duration_s = 0.6
        text = render_profile(tracer.records)
        assert "other" not in text
        assert "100.0%" in text

    def test_nested_shares_are_parenthesized(self):
        tracer = Tracer()
        with tracer.span("converge"):
            with tracer.span("pass:NOISE"):
                pass
        text = render_profile(tracer.records)
        assert "(" in text.split("pass:NOISE")[1].splitlines()[0]


class TestBenchCLI:
    def test_bench_writes_valid_snapshot(self, tmp_path, capsys):
        out = tmp_path / "BENCH_5.json"
        code = main([
            "bench", "--machines", "vliw2", "--benchmarks", "vvmul",
            "--schedulers", "convergent,uas", "--repeats", "1",
            "--out", str(out),
        ])
        assert code == 0
        data = json.loads(out.read_text())
        assert validate_snapshot(data) == []
        assert data["snapshot_id"] == 5  # from the filename
        assert "bench snapshot" in capsys.readouterr().out

    def test_bench_compare_neutral_and_regressed(self, tmp_path, capsys):
        snap = make_snapshot([make_cell()], snapshot_id=1)
        degraded = make_snapshot([make_cell(cycles=77)], snapshot_id=2)
        path_a, path_b = tmp_path / "BENCH_1.json", tmp_path / "BENCH_2.json"
        snap.save(path_a)
        degraded.save(path_b)
        assert main(["bench", "--compare", str(path_a), str(path_a)]) == 0
        capsys.readouterr()
        report = tmp_path / "report.md"
        code = main([
            "bench", "--compare", str(path_a), str(path_b),
            "--report", str(report),
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "regressed" in out
        assert "50 -> 77" in out
        assert report.exists() and "QUALITY REGRESSION" in report.read_text()

    def test_bench_against_latest(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        args = [
            "bench", "--machines", "vliw2", "--benchmarks", "vvmul",
            "--schedulers", "convergent", "--repeats", "1",
        ]
        # No baseline yet: --against-latest is an error.
        assert main(args + ["--against-latest"]) == 2
        assert main(args) == 0  # writes BENCH_1.json
        assert (tmp_path / "BENCH_1.json").exists()
        capsys.readouterr()
        # Deterministic pipeline: the rerun matches its own baseline.
        assert main(args + ["--against-latest"]) == 0
        assert "neutral" in capsys.readouterr().out

    def test_trace_diff_cli(self, tmp_path, capsys):
        path_a, path_b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        for seed, path in ((0, path_a), (1, path_b)):
            assert main([
                "trace", "vvmul", "--machine", "vliw2",
                "--seed", str(seed), "--out", str(path),
            ]) == 0
        capsys.readouterr()
        assert main(["trace", "--diff", str(path_a), str(path_b)]) == 0
        out = capsys.readouterr().out
        assert "trace diff" in out and "Δchurn" in out

    def test_trace_diff_missing_file_errors(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        assert main(["trace", "--diff", str(missing), str(missing)]) == 2
        assert "no such trace" in capsys.readouterr().err

    def test_trace_without_benchmark_or_diff_errors(self, capsys):
        assert main(["trace"]) == 2
        assert "required" in capsys.readouterr().err

"""Unit tests for the baseline schedulers: UAS, PCC, Rawcc, single."""

import pytest

from repro.ir import RegionBuilder
from repro.ir.regions import Program
from repro.machine import ClusteredVLIW, RawMachine
from repro.schedulers import (
    ListScheduler,
    PartialComponentClustering,
    RawccScheduler,
    SchedulingError,
    SingleClusterScheduler,
    UnifiedAssignAndSchedule,
)
from repro.sim import simulate
from repro.workloads import apply_congruence, build_benchmark

from .conftest import build_chain_region, build_dot_region


class TestUAS:
    def test_produces_valid_schedule(self, vliw4, dot_region):
        sched = UnifiedAssignAndSchedule().schedule(dot_region, vliw4)
        assert simulate(dot_region, vliw4, sched).ok

    def test_uses_multiple_clusters_on_parallel_work(self, vliw4):
        region = build_dot_region(n=16, banks=4)
        sched = UnifiedAssignAndSchedule().schedule(region, vliw4)
        used = {op.cluster for op in sched.ops.values()}
        assert len(used) > 1

    def test_respects_preplacement(self, raw4, jacobi_raw):
        sched = UnifiedAssignAndSchedule().schedule(jacobi_raw, raw4)
        for inst in jacobi_raw.ddg:
            if inst.preplaced:
                assert sched.cluster_of(inst.uid) == inst.home_cluster
        assert simulate(jacobi_raw, raw4, sched).ok

    def test_beats_single_cluster_on_fat_graph(self, vliw4):
        region = build_dot_region(n=16, banks=4)
        uas = UnifiedAssignAndSchedule().schedule(region, vliw4)
        single = ListScheduler().schedule(
            region, vliw4, assignment={i: 0 for i in range(len(region.ddg))}
        )
        assert uas.makespan < single.makespan


class TestPCC:
    def test_components_are_a_partition(self, mxm_vliw):
        pcc = PartialComponentClustering(theta=6)
        comps = pcc.build_components(mxm_vliw.ddg)
        seen = [uid for c in comps for uid in c.members]
        assert sorted(seen) == list(range(len(mxm_vliw.ddg)))

    def test_component_size_capped(self, mxm_vliw):
        pcc = PartialComponentClustering(theta=5)
        comps = pcc.build_components(mxm_vliw.ddg)
        assert max(len(c.members) for c in comps) <= 5

    def test_theta_validation(self):
        with pytest.raises(ValueError):
            PartialComponentClustering(theta=0)

    def test_preplaced_component_home(self, vliw4, mxm_vliw):
        pcc = PartialComponentClustering()
        assignment = pcc.assign(mxm_vliw.ddg, vliw4)
        # Assignment itself must be schedulable.
        sched = ListScheduler().schedule(mxm_vliw, vliw4, assignment=assignment)
        assert simulate(mxm_vliw, vliw4, sched).ok

    def test_valid_schedule_on_both_machines(self, vliw4, raw4):
        region = build_dot_region(n=8, banks=4)
        for machine in (vliw4, raw4):
            sched = PartialComponentClustering().schedule(region, machine)
            assert simulate(region, machine, sched).ok

    def test_descent_improves_or_matches_estimate(self, vliw4, mxm_vliw):
        pcc = PartialComponentClustering(max_sweeps=0)
        no_descent = pcc._estimate(
            mxm_vliw.ddg,
            [pcc.assign(mxm_vliw.ddg, vliw4)[i] for i in range(len(mxm_vliw.ddg))],
            vliw4,
        )
        pcc_full = PartialComponentClustering(max_sweeps=8)
        with_descent = pcc_full._estimate(
            mxm_vliw.ddg,
            [pcc_full.assign(mxm_vliw.ddg, vliw4)[i] for i in range(len(mxm_vliw.ddg))],
            vliw4,
        )
        assert with_descent <= no_descent + 1e-9


class TestRawcc:
    def test_valid_schedule(self, raw4, jacobi_raw):
        sched = RawccScheduler().schedule(jacobi_raw, raw4)
        assert simulate(jacobi_raw, raw4, sched).ok

    def test_clustering_groups_serial_chain(self, raw4):
        region = build_chain_region(length=8)
        rawcc = RawccScheduler()
        vcs = rawcc.cluster(region.ddg, raw4, comm_cost=3)
        sizes = sorted((len(vc.members) for vc in vcs if vc.members), reverse=True)
        # A pure chain should stay (almost) entirely in one cluster.
        assert sizes[0] >= len(region.ddg) - 2

    def test_merge_respects_cluster_budget(self, raw4, jacobi_raw):
        rawcc = RawccScheduler()
        vcs = rawcc.cluster(jacobi_raw.ddg, raw4, comm_cost=3)
        merged = rawcc.merge(vcs, jacobi_raw.ddg, raw4.n_clusters)
        homes = [vc.home for vc in merged if vc.home is not None]
        # Never merges two distinct homes together.
        for vc in merged:
            members_homes = {
                jacobi_raw.ddg.instruction(u).home_cluster
                for u in vc.members
                if jacobi_raw.ddg.instruction(u).home_cluster is not None
            }
            assert len(members_homes) <= 1

    def test_placement_honours_homes(self, raw4, jacobi_raw):
        assignment = RawccScheduler().assign(jacobi_raw.ddg, raw4)
        for inst in jacobi_raw.ddg:
            if inst.preplaced:
                assert assignment[inst.uid] == inst.home_cluster

    def test_load_aware_clustering_avoids_collapse(self, raw16):
        program = build_benchmark("sha", raw16)
        region = program.regions[0]
        assignment = RawccScheduler().assign(region.ddg, raw16)
        from collections import Counter

        counts = Counter(assignment.values())
        # Without load awareness nearly half the graph lands on one tile;
        # with it, no tile exceeds a serial spine's worth of work.
        assert max(counts.values()) < len(region.ddg) // 2
        assert len(counts) >= raw16.n_clusters // 2


class TestSingleCluster:
    def test_everything_on_cluster_zero(self, vliw1, dot_region):
        sched = SingleClusterScheduler().schedule(dot_region, vliw1)
        assert all(op.cluster == 0 for op in sched.ops.values())
        assert sched.comm_count() == 0
        assert simulate(dot_region, vliw1, sched).ok

    def test_rejects_remote_preplacement(self, raw4):
        b = RegionBuilder("r")
        x = b.load(bank=1, array="a")
        b.live_out(x)
        program = Program("p", [b.build()])
        apply_congruence(program, raw4)
        with pytest.raises(SchedulingError, match="single-cluster"):
            SingleClusterScheduler().schedule(program.regions[0], raw4)

    def test_single_tile_raw_accepts_all_banks(self):
        raw1 = RawMachine(1, 1)
        program = build_benchmark("jacobi", raw1)
        sched = SingleClusterScheduler().schedule(program.regions[0], raw1)
        assert simulate(program.regions[0], raw1, sched).ok

"""Property-based tests (hypothesis) for the schedule-cache fingerprint
and the cache's isolation guarantees.

Three families:

* the canonical DDG fingerprint is *stable* under representation
  details — building the same abstract graph in any topological
  insertion order (different uids, different edge insertion order)
  yields the same fingerprint;
* the fingerprint is *sensitive* to everything that can change a
  schedule — an opcode, a latency, the machine shape, the pass
  sequence, the seed, the harness flags, the region name;
* cached results never leak mutable state — mutating a schedule
  returned by the cache cannot corrupt later lookups.
"""

from __future__ import annotations

import copy

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.engine import ScheduleCache, ddg_fingerprint, schedule_key
from repro.engine.fingerprint import canonical_permutation
from repro.ir import Opcode, RegionBuilder
from repro.machine import ClusteredVLIW, RawMachine

_ARITH = [Opcode.ADD, Opcode.FADD, Opcode.FMUL, Opcode.SUB, Opcode.MUL]


@st.composite
def dag_recipes(draw, max_nodes=24):
    """An abstract DAG: per-node kind and operand links by abstract id.

    The recipe is independent of any insertion order, so the same graph
    can be rebuilt along different topological orders.  Leaf constants
    are unique and no two op nodes share an ``(opcode, a, b)`` triple:
    that makes every node's structural hash distinct, which is the
    precondition for a *stable* canonical order (the fingerprint's uid
    tie-break may legitimately distinguish hash-identical twins — a
    documented spurious miss, not a wrong hit).
    """
    n = draw(st.integers(min_value=4, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    nodes = []
    triples = set()
    for i in range(n):
        if i < 2 or (rng.random() < 0.2 and i < n - 1):
            nodes.append(("li", float(i + 1)))
            continue
        for _ in range(8):
            op = _ARITH[int(rng.integers(len(_ARITH)))]
            a = int(rng.integers(i))
            b = int(rng.integers(i))
            if (op, a, b) not in triples:
                break
        else:  # no unused triple found; fall back to a unique leaf
            nodes.append(("li", float(i + 1)))
            continue
        triples.add((op, a, b))
        nodes.append(("op", op, a, b))
    return nodes


def build_region(nodes, order_seed=None, name="prop"):
    """Materialize a recipe as a region.

    Args:
        nodes: The abstract recipe from :func:`dag_recipes`.
        order_seed: ``None`` builds in recipe order; otherwise nodes are
            emitted in a random *valid* topological order drawn from
            this seed (operands before users).
        name: Region name (part of the cache key, so tests pin it).
    """
    order = list(range(len(nodes)))
    if order_seed is not None:
        rng = np.random.default_rng(order_seed)
        placed = set()
        order = []
        remaining = list(range(len(nodes)))
        while remaining:
            ready = [
                i for i in remaining
                if nodes[i][0] == "li"
                or (nodes[i][2] in placed and nodes[i][3] in placed)
            ]
            pick = ready[int(rng.integers(len(ready)))]
            order.append(pick)
            placed.add(pick)
            remaining.remove(pick)
    b = RegionBuilder(name)
    values = {}
    used = set()
    for i in order:
        node = nodes[i]
        if node[0] == "li":
            values[i] = b.li(node[1])
        else:
            _, op, a, bb = node
            values[i] = b.op(op, values[a], values[bb])
            used.update((a, bb))
    for i in range(len(nodes)):
        if i not in used:
            b.live_out(values[i])
    return b.build()


class TestFingerprintStability:
    @given(dag_recipes(), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_invariant_under_insertion_order(self, nodes, order_seed):
        """Isomorphic graphs built in different orders share a key."""
        original = build_region(nodes)
        shuffled = build_region(nodes, order_seed=order_seed)
        assert ddg_fingerprint(original.ddg) == ddg_fingerprint(shuffled.ddg)
        machine = ClusteredVLIW(2)
        from repro.schedulers import UnifiedAssignAndSchedule

        key_a = schedule_key(original, machine, UnifiedAssignAndSchedule())
        key_b = schedule_key(shuffled, machine, UnifiedAssignAndSchedule())
        assert key_a.key == key_b.key

    @given(dag_recipes())
    @settings(max_examples=40, deadline=None)
    def test_permutation_is_a_bijection(self, nodes):
        region = build_region(nodes)
        perm = canonical_permutation(region.ddg)
        assert sorted(perm) == list(range(len(region.ddg)))


class TestFingerprintSensitivity:
    @given(dag_recipes())
    @settings(max_examples=30, deadline=None)
    def test_differs_under_opcode_change(self, nodes):
        """Swapping one arithmetic opcode changes the graph key."""
        mutated = list(nodes)
        idx = max(i for i, node in enumerate(nodes) if node[0] == "op")
        _, op, a, b = mutated[idx]
        replacement = next(o for o in _ARITH if o is not op)
        mutated[idx] = ("op", replacement, a, b)
        assert ddg_fingerprint(build_region(nodes).ddg) != ddg_fingerprint(
            build_region(mutated).ddg
        )

    @given(dag_recipes())
    @settings(max_examples=15, deadline=None)
    def test_differs_under_machine_and_latency_change(self, nodes):
        from repro.schedulers import UnifiedAssignAndSchedule

        region = build_region(nodes)
        scheduler = UnifiedAssignAndSchedule()
        base = schedule_key(region, ClusteredVLIW(4), scheduler).key
        assert base != schedule_key(region, ClusteredVLIW(2), scheduler).key
        assert base != schedule_key(region, RawMachine(2, 2), scheduler).key
        slower = copy.deepcopy(ClusteredVLIW(4))
        slower.latency_model.latencies[Opcode.FADD] += 1
        assert base != schedule_key(region, slower, scheduler).key

    @given(dag_recipes())
    @settings(max_examples=15, deadline=None)
    def test_differs_under_scheduler_and_run_perturbations(self, nodes):
        from repro.core import ConvergentScheduler

        region = build_region(nodes)
        machine = ClusteredVLIW(2)
        base = schedule_key(
            region, machine, ConvergentScheduler(seed=0), check_values=True,
        )
        keys = {
            "base": base.key,
            "seed": schedule_key(
                region, machine, ConvergentScheduler(seed=1),
            ).key,
            "sequence": schedule_key(
                region, machine,
                ConvergentScheduler(passes=["INITTIME", "COMM"], seed=0),
            ).key,
            "check_values": schedule_key(
                region, machine, ConvergentScheduler(seed=0),
                check_values=False,
            ).key,
            "verify": schedule_key(
                region, machine, ConvergentScheduler(seed=0), verify=True,
            ).key,
        }
        renamed = build_region(nodes, name="prop2")
        keys["region_name"] = schedule_key(
            renamed, machine, ConvergentScheduler(seed=0),
        ).key
        assert len(set(keys.values())) == len(keys), keys


class TestCacheIsolation:
    @given(dag_recipes(max_nodes=14))
    @settings(max_examples=15, deadline=None)
    def test_mutating_returned_schedule_never_corrupts_cache(self, nodes):
        from repro.schedulers import UnifiedAssignAndSchedule
        from repro.schedulers.schedule import ScheduledOp

        region = build_region(nodes)
        machine = ClusteredVLIW(2)
        scheduler = UnifiedAssignAndSchedule()
        schedule = scheduler.schedule(region, machine)
        cache = ScheduleCache()
        fingerprint = schedule_key(region, machine, scheduler)
        cache.put(
            fingerprint, schedule, cycles=7, transfers=1, utilization=0.5,
            comm_busy=2, compile_seconds=0.1, verified=None, diagnostics=[],
        )

        def flat(s):
            return sorted(
                (op.uid, op.cluster, op.unit, op.start, op.latency)
                for op in s.ops.values()
            )

        pristine = flat(schedule)
        first = cache.get(fingerprint, region)
        assert flat(first.schedule) == pristine
        # Vandalize everything the hit handed out.
        first.schedule.ops.clear()
        first.schedule.ops[999] = ScheduledOp(999, 0, 0, 0, 1)
        first.schedule.comms.append(None)
        first.diagnostics.append("vandalized")
        # Mutating the *stored* schedule must be invisible too.
        schedule.ops.clear()
        second = cache.get(fingerprint, region)
        assert flat(second.schedule) == pristine
        assert second.diagnostics == []

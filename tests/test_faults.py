"""Fault tolerance: pass guard, fallback chain, hardened harness,
chaos passes, and the seeded injection campaign.

The acceptance bar for the whole subsystem is at the bottom: a campaign
of 100+ injected faults across every chaos kind completes with zero
crashes, every region ending in a simulator-validated schedule, with
each degradation recorded in the trace or result status.
"""

import numpy as np
import pytest

from repro.core import ConvergentScheduler, PassGuard, PreferenceMatrix
from repro.core.guard import GuardEvent
from repro.core.passes import PassContext, make_pass
from repro.faults import (
    FAULT_REGISTRY,
    NaNInjector,
    RaisingPass,
    WeightCorruptor,
    ZeroRowPass,
    make_fault,
    run_campaign,
)
from repro.harness import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_PARTIAL,
    format_degradations,
    run_program,
    run_region,
)
from repro.harness.results import program_result_from_dict, program_result_to_dict
from repro.machine import ClusteredVLIW, RawMachine
from repro.schedulers import (
    FallbackChain,
    Scheduler,
    SchedulingError,
    SingleClusterScheduler,
    UnifiedAssignAndSchedule,
)
from repro.sim import simulate
from repro.workloads import build_benchmark

from .conftest import build_dot_region


def make_ctx(region, machine, seed=0):
    """A PassContext over a fresh uniform matrix for ``region``."""
    matrix = PreferenceMatrix.for_region(region.ddg, machine.n_clusters)
    return PassContext(
        ddg=region.ddg,
        machine=machine,
        matrix=matrix,
        rng=np.random.default_rng(seed),
    )


class TestMatrixCheckpoint:
    def test_restore_roundtrip(self, dot_region, vliw4):
        matrix = PreferenceMatrix.for_region(dot_region.ddg, vliw4.n_clusters)
        token = matrix.checkpoint()
        matrix.scale(0, 9.0)
        matrix.normalize()
        matrix.restore(token)
        assert np.allclose(matrix.data, 1.0 / matrix.data[0].size)

    def test_restore_invalidates_marginal_cache(self):
        matrix = PreferenceMatrix(2, 2, 2)
        token = matrix.checkpoint()
        matrix.scale(0, 4.0, cluster=1)
        assert matrix.preferred_cluster(0) == 1
        matrix.restore(token)
        assert matrix.cluster_marginals()[0][0] == matrix.cluster_marginals()[0][1]

    def test_restore_shape_mismatch_rejected(self):
        matrix = PreferenceMatrix(2, 2, 2)
        with pytest.raises(ValueError, match="shape"):
            matrix.restore(np.zeros((1, 2, 2)))

    def test_health_clean_matrix(self):
        assert PreferenceMatrix(3, 2, 4).health() is None

    def test_health_detects_nan(self):
        matrix = PreferenceMatrix(3, 2, 4)
        matrix.data[1, 0, 0] = np.nan
        assert "NaN" in matrix.health()

    def test_health_detects_inf(self):
        matrix = PreferenceMatrix(3, 2, 4)
        matrix.data[0, 1, 2] = np.inf
        assert "infinite" in matrix.health()

    def test_health_detects_negative(self):
        matrix = PreferenceMatrix(3, 2, 4)
        matrix.data[2, 0, 1] = -0.25
        assert "negative" in matrix.health()

    def test_health_detects_zero_row(self):
        matrix = PreferenceMatrix(3, 2, 4)
        matrix.data[1] = 0.0
        matrix.touch()
        assert "all-zero" in matrix.health()

    def test_health_normalization_check_is_opt_in(self):
        matrix = PreferenceMatrix(3, 2, 4)
        matrix.data[:] *= 3.0
        matrix.touch()
        assert matrix.health() is None
        assert "sum" in matrix.health(check_normalization=True)


class TestChaosPasses:
    @pytest.mark.parametrize("kind", sorted(FAULT_REGISTRY))
    def test_fault_registry_constructs(self, kind):
        assert make_fault(kind).name.startswith("FAULT")

    def test_unknown_fault_kind(self):
        with pytest.raises(KeyError, match="unknown fault"):
            make_fault("gamma_ray")

    def test_nan_injector_corrupts(self, dot_region, vliw4):
        ctx = make_ctx(dot_region, vliw4)
        NaNInjector().apply(ctx)
        assert np.isnan(ctx.matrix.data).any()

    def test_weight_corruptor_goes_negative(self, dot_region, vliw4):
        ctx = make_ctx(dot_region, vliw4)
        WeightCorruptor().apply(ctx)
        assert (ctx.matrix.data < 0).any()

    def test_zero_row_erases_an_instruction(self, dot_region, vliw4):
        ctx = make_ctx(dot_region, vliw4)
        ZeroRowPass().apply(ctx)
        sums = ctx.matrix.data.sum(axis=(1, 2))
        assert (sums == 0).sum() == 1

    def test_raising_pass_mutates_then_raises(self, dot_region, vliw4):
        ctx = make_ctx(dot_region, vliw4)
        before = ctx.matrix.checkpoint()
        with pytest.raises(RuntimeError, match="injected fault"):
            RaisingPass().apply(ctx)
        assert not np.allclose(ctx.matrix.data, before)  # partial damage

    def test_chaos_deterministic_given_rng_seed(self, dot_region, vliw4):
        a = make_ctx(dot_region, vliw4, seed=7)
        b = make_ctx(dot_region, vliw4, seed=7)
        NaNInjector().apply(a)
        NaNInjector().apply(b)
        assert np.array_equal(np.isnan(a.matrix.data), np.isnan(b.matrix.data))


class TestPassGuard:
    @pytest.mark.parametrize("kind", sorted(FAULT_REGISTRY))
    def test_rollback_restores_pre_pass_matrix(self, kind, dot_region, vliw4):
        ctx = make_ctx(dot_region, vliw4)
        ctx.matrix.scale(0, 3.0, cluster=1)
        ctx.matrix.normalize()
        before = ctx.matrix.checkpoint()
        guard = PassGuard()
        event = guard.run(make_fault(kind), ctx)
        assert event is not None
        assert event.recovered
        assert np.array_equal(ctx.matrix.data, before)

    def test_success_returns_none_and_normalizes(self, dot_region, vliw4):
        ctx = make_ctx(dot_region, vliw4)
        guard = PassGuard()
        assert guard.run(make_pass("LOAD"), ctx) is None
        ctx.matrix.check_invariants()
        assert guard.events == []

    def test_exception_vs_health_kinds(self, dot_region, vliw4):
        ctx = make_ctx(dot_region, vliw4)
        guard = PassGuard(quarantine_after=10)
        guard.run(RaisingPass(), ctx)
        guard.run(NaNInjector(), ctx)
        assert [e.kind for e in guard.events] == ["exception", "health"]

    def test_quarantine_after_repeat_failures(self, dot_region, vliw4):
        ctx = make_ctx(dot_region, vliw4)
        guard = PassGuard(quarantine_after=2)
        chaos = RaisingPass()
        guard.run(chaos, ctx)
        assert not guard.is_quarantined(chaos)
        guard.run(chaos, ctx)
        assert guard.is_quarantined(chaos)
        assert guard.quarantined == [chaos.name]
        assert guard.n_failures == 2

    def test_quarantine_after_validated(self):
        with pytest.raises(ValueError):
            PassGuard(quarantine_after=0)

    def test_event_describe_mentions_pass(self):
        event = GuardEvent("FAULT_NAN", 0, "health", "NaN in row 3")
        assert "FAULT_NAN" in event.describe()
        assert "rolled back" in event.describe()


class TestGuardedScheduler:
    @pytest.mark.parametrize("kind", sorted(FAULT_REGISTRY))
    def test_survives_each_fault_kind(self, kind, vliw4):
        region = build_dot_region(n=8)
        passes = ["INITTIME", "NOISE", make_fault(kind), "LOAD", "COMM", "EMPHCP"]
        result = ConvergentScheduler(passes=passes).converge(region, vliw4)
        assert simulate(region, vliw4, result.schedule).ok
        assert result.degraded
        assert len(result.trace.guard_events) >= 1
        assert result.trace.degraded

    def test_trace_churn_series_excludes_failed_pass(self, vliw4):
        region = build_dot_region()
        passes = ["INITTIME", "NOISE", RaisingPass(), "LOAD", "EMPHCP"]
        result = ConvergentScheduler(passes=passes).converge(region, vliw4)
        names = [r.pass_name for r in result.trace.records]
        assert "FAULT_RAISE" not in names
        assert names == ["INITTIME", "NOISE", "LOAD", "EMPHCP"]

    def test_quarantine_across_iterations(self, vliw4):
        region = build_dot_region()
        passes = ["INITTIME", RaisingPass(), "LOAD", "EMPHCP"]
        result = ConvergentScheduler(
            passes=passes, iterations=4, quarantine_after=2
        ).converge(region, vliw4)
        guard = result.guard
        # Two failures, then quarantined: rounds 3 and 4 skip the pass.
        assert guard.failure_counts["FAULT_RAISE"] == 2
        assert guard.quarantined == ["FAULT_RAISE"]
        kinds = [e.kind for e in result.trace.guard_events]
        assert kinds == ["exception", "exception", "quarantine"]

    def test_unguarded_scheduler_crashes(self, vliw4):
        region = build_dot_region()
        passes = ["INITTIME", RaisingPass(), "LOAD"]
        scheduler = ConvergentScheduler(passes=passes, guard=False)
        with pytest.raises(RuntimeError, match="injected fault"):
            scheduler.converge(region, vliw4)

    def test_guard_neutral_on_happy_path(self, vliw4, mxm_vliw):
        guarded = ConvergentScheduler(guard=True).converge(mxm_vliw, vliw4)
        plain = ConvergentScheduler(guard=False).converge(mxm_vliw, vliw4)
        assert guarded.assignment == plain.assignment
        assert guarded.schedule.makespan == plain.schedule.makespan
        assert guarded.guard.events == []
        assert not guarded.degraded

    def test_extract_assignment_empty_feasible_is_descriptive(self):
        from repro.ir.opcode import FuncClass, LatencyModel
        from repro.machine.fu import Cluster, FunctionalUnit
        from repro.machine.machine import Machine

        class IntOnlyMachine(Machine):
            """Two clusters with integer units only — no FPU anywhere."""

            memory_affinity = "soft"
            remote_mem_penalty = 0

            def __init__(self):
                classes = frozenset({FuncClass.IALU, FuncClass.CONST, FuncClass.MEM})
                clusters = [
                    Cluster(index=i, units=(FunctionalUnit("u", classes),))
                    for i in range(2)
                ]
                super().__init__(clusters, LatencyModel(), "intonly2")

            def comm_latency(self, src, dst):
                return 0 if src == dst else 1

            def comm_resources(self, src, dst):
                return () if src == dst else (("bus", src, dst),)

            def distance(self, src, dst):
                return 0 if src == dst else 1

        machine = IntOnlyMachine()
        region = build_dot_region(n=2, banks=2)  # contains FMULs
        matrix = PreferenceMatrix.for_region(region.ddg, machine.n_clusters)
        with pytest.raises(SchedulingError, match="no feasible cluster"):
            ConvergentScheduler.extract_assignment(matrix, region, machine)
        with pytest.raises(SchedulingError, match="intonly2"):
            ConvergentScheduler.extract_assignment(matrix, region, machine)


class _AlwaysFails(Scheduler):
    """Scheduler that always raises; exercises the fallback chain."""

    name = "doomed"

    def schedule(self, region, machine):
        raise SchedulingError("doomed by design")


class TestFallbackChain:
    def test_level_zero_on_healthy_primary(self, vliw4, dot_region):
        chain = FallbackChain()
        schedule = chain.schedule(dot_region, vliw4)
        assert simulate(dot_region, vliw4, schedule).ok
        assert chain.last_level == 0
        assert not chain.last_report.degraded

    def test_falls_back_past_crashing_primary(self, vliw4, dot_region):
        chain = FallbackChain(
            [_AlwaysFails(), UnifiedAssignAndSchedule(), SingleClusterScheduler()]
        )
        schedule = chain.schedule(dot_region, vliw4)
        assert simulate(dot_region, vliw4, schedule).ok
        assert chain.last_level == 1
        assert chain.last_report.degraded
        assert "doomed by design" in chain.last_report.describe()

    def test_unguarded_fault_degrades_to_list_scheduler(self, vliw4):
        region = build_dot_region(n=8)
        faulty = ConvergentScheduler(
            passes=["INITTIME", RaisingPass(), "LOAD"], guard=False
        )
        chain = FallbackChain(
            [faulty, UnifiedAssignAndSchedule(), SingleClusterScheduler()]
        )
        schedule = chain.schedule(region, vliw4)
        assert simulate(region, vliw4, schedule).ok
        assert chain.last_level == 1

    def test_all_levels_fail_raises_with_details(self, vliw4, dot_region):
        chain = FallbackChain([_AlwaysFails(), _AlwaysFails()])
        with pytest.raises(SchedulingError, match="every scheduler"):
            chain.schedule(dot_region, vliw4)

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            FallbackChain([])

    def test_default_chain_composition(self):
        chain = FallbackChain()
        assert [s.name for s in chain.schedulers] == ["convergent", "uas", "single"]


class TestHardenedHarness:
    def test_run_region_captures_failure(self, vliw4, dot_region):
        result = run_region(
            dot_region, vliw4, _AlwaysFails(), capture_errors=True
        )
        assert result.status == STATUS_FAILED
        assert not result.ok
        assert "doomed" in result.error
        assert result.cycles == 0
        assert result.n_instructions == len(dot_region.ddg)

    def test_run_region_raises_by_default(self, vliw4, dot_region):
        with pytest.raises(SchedulingError):
            run_region(dot_region, vliw4, _AlwaysFails())

    def test_run_program_partial_result(self, vliw4):
        program = build_benchmark("vvmul", vliw4)

        class FailsOnce(Scheduler):
            """Fails the first region only."""

            name = "flaky"

            def __init__(self):
                self.calls = 0
                self.inner = UnifiedAssignAndSchedule()

            def schedule(self, region, machine):
                self.calls += 1
                if self.calls == 1:
                    raise SchedulingError("transient failure")
                return self.inner.schedule(region, machine)

        # vvmul has one region; duplicate it so the program has two.
        program.regions.append(build_benchmark("yuv", vliw4).regions[0])
        result = run_program(program, vliw4, FailsOnce())
        assert result.status == STATUS_PARTIAL
        assert len(result.failed_regions) == 1
        assert "transient failure" in result.error
        assert not result.ok
        warning = format_degradations(result)
        assert "WARNING" in warning and "transient failure" in warning

    def test_run_program_all_failed(self, vliw4):
        program = build_benchmark("vvmul", vliw4)
        result = run_program(program, vliw4, _AlwaysFails())
        assert result.status == STATUS_FAILED

    def test_run_program_ok_status_and_counts(self, vliw4):
        program = build_benchmark("vvmul", vliw4)
        result = run_program(program, vliw4, UnifiedAssignAndSchedule())
        assert result.status == STATUS_OK
        assert result.ok
        assert result.error is None
        assert result.n_regions == len(program.regions)
        assert result.instructions == sum(len(r.ddg) for r in program.regions)
        assert result.instructions > result.n_regions
        assert format_degradations(result) == ""

    def test_program_result_serialization_roundtrip(self, vliw4):
        program = build_benchmark("vvmul", vliw4)
        result = run_program(program, vliw4, UnifiedAssignAndSchedule())
        data = program_result_to_dict(result)
        back = program_result_from_dict(data)
        assert back.cycles == result.cycles
        assert back.status == result.status
        assert back.instructions == result.instructions
        assert back.regions[0].region_name == result.regions[0].region_name


class TestCampaign:
    def make_regions(self, machine):
        return [
            region
            for name in ("vvmul", "yuv")
            for region in build_benchmark(name, machine).regions
        ]

    def test_campaign_zero_crashes_vliw(self, vliw4):
        regions = self.make_regions(vliw4)
        report = run_campaign(vliw4, regions, n_trials=60, seed=0)
        assert report.n_trials == 60
        assert report.ok, report.render()
        assert all(o.validated for o in report.outcomes)

    def test_campaign_zero_crashes_raw(self, raw4):
        regions = self.make_regions(raw4)
        report = run_campaign(raw4, regions, n_trials=40, seed=1)
        assert report.ok, report.render()

    def test_campaign_every_fault_kind_injected(self, vliw4):
        regions = self.make_regions(vliw4)
        report = run_campaign(vliw4, regions, n_trials=60, seed=0)
        assert {o.fault_kind for o in report.outcomes} == set(FAULT_REGISTRY)

    def test_campaign_records_degradations(self, vliw4):
        regions = self.make_regions(vliw4)
        report = run_campaign(vliw4, regions, n_trials=60, seed=0)
        # Guarded trials roll back; some unguarded trials fall back.
        assert report.count("rollback") > 0
        assert report.total_guard_events > 0
        for outcome in report.outcomes:
            if outcome.defense == "rollback":
                assert outcome.guard_events > 0
            if outcome.defense == "fallback":
                assert outcome.fallback_level > 0

    def test_campaign_deterministic(self, vliw4):
        regions = self.make_regions(vliw4)
        a = run_campaign(vliw4, regions, n_trials=25, seed=3)
        b = run_campaign(vliw4, regions, n_trials=25, seed=3)
        assert [(o.fault_kind, o.position, o.defense) for o in a.outcomes] == [
            (o.fault_kind, o.position, o.defense) for o in b.outcomes
        ]

    def test_campaign_render_mentions_survival(self, vliw4):
        regions = self.make_regions(vliw4)
        report = run_campaign(vliw4, regions, n_trials=10, seed=5)
        text = report.render()
        assert "survived" in text and "10 trials" in text

    def test_campaign_rejects_empty_region_pool(self, vliw4):
        with pytest.raises(ValueError):
            run_campaign(vliw4, [], n_trials=1)


class TestMakePassHardening:
    def test_duplicate_argument_rejected(self):
        with pytest.raises(ValueError, match="duplicate argument"):
            make_pass("LEVEL(stride=2, stride=3)")

    def test_non_identifier_name_rejected(self):
        with pytest.raises(ValueError, match="identifier"):
            make_pass("LEVEL(str ide=2)")
        with pytest.raises(ValueError, match="identifier"):
            make_pass("NOISE(2amount=0.5)")

    def test_non_numeric_value_rejected(self):
        with pytest.raises(ValueError, match="non-numeric"):
            make_pass("NOISE(amount=lots)")

    def test_good_specs_still_parse(self):
        p = make_pass("LEVEL(stride=2, granularity=1)")
        assert p.stride == 2 and p.granularity == 1

"""Documentation quality gates.

The docs are a deliverable: these tests keep the top-level documents
present and truthful, and enforce docstring coverage across the public
surface — every module, every public class, every public function.
"""

import importlib
import inspect
import pkgutil
from pathlib import Path

import pytest

import repro

ROOT = Path(__file__).resolve().parent.parent


def walk_modules():
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name == "repro.__main__":  # runs the CLI on import
            continue
        names.append(info.name)
    return [importlib.import_module(n) for n in sorted(names)]


class TestDocumentsExist:
    @pytest.mark.parametrize(
        "name", ["README.md", "DESIGN.md", "EXPERIMENTS.md",
                 "docs/passes.md", "docs/machines.md"]
    )
    def test_document_present_and_substantial(self, name):
        path = ROOT / name
        assert path.exists(), f"{name} missing"
        assert len(path.read_text()) > 1500, f"{name} looks stubbed"

    def test_readme_covers_the_essentials(self):
        text = (ROOT / "README.md").read_text()
        for needle in ("Convergent Scheduling", "MICRO-35", "pip install",
                       "ConvergentScheduler", "EXPERIMENTS.md", "examples/"):
            assert needle in text

    def test_design_lists_every_experiment(self):
        text = (ROOT / "DESIGN.md").read_text()
        for needle in ("Table 2", "Fig. 6", "Fig. 7", "Fig. 8", "Fig. 9",
                       "Fig. 10", "Table 1"):
            assert needle in text

    def test_experiments_records_paper_vs_measured(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        assert "paper" in text.lower()
        assert "+21%" in text  # the paper's headline, for comparison
        assert "Known deviations" in text

    def test_passes_doc_covers_every_registered_pass(self):
        from repro.core.passes import PASS_REGISTRY

        text = (ROOT / "docs" / "passes.md").read_text()
        for name in PASS_REGISTRY:
            assert f"## {name}" in text, f"docs/passes.md missing {name}"


class TestDocstringCoverage:
    def test_every_module_has_a_docstring(self):
        missing = [m.__name__ for m in walk_modules() if not inspect.getdoc(m)]
        assert missing == []

    def test_every_public_class_documented(self):
        missing = []
        for module in walk_modules():
            for name, obj in vars(module).items():
                if name.startswith("_") or not inspect.isclass(obj):
                    continue
                if obj.__module__ != module.__name__:
                    continue  # re-export
                if not inspect.getdoc(obj):
                    missing.append(f"{module.__name__}.{name}")
        assert missing == []

    def test_every_public_function_documented(self):
        missing = []
        for module in walk_modules():
            for name, obj in vars(module).items():
                if name.startswith("_") or not inspect.isfunction(obj):
                    continue
                if obj.__module__ != module.__name__:
                    continue
                if not inspect.getdoc(obj):
                    missing.append(f"{module.__name__}.{name}")
        assert missing == []

    def test_public_methods_of_core_classes_documented(self):
        from repro.core.convergent import ConvergentScheduler
        from repro.core.weights import PreferenceMatrix
        from repro.ir.ddg import DataDependenceGraph
        from repro.schedulers.list_scheduler import ListScheduler
        from repro.sim.simulator import SimulationReport

        missing = []
        for cls in (PreferenceMatrix, DataDependenceGraph, ListScheduler,
                    ConvergentScheduler, SimulationReport):
            for name, member in vars(cls).items():
                if name.startswith("_"):
                    continue
                if inspect.isfunction(member) and not inspect.getdoc(member):
                    missing.append(f"{cls.__name__}.{name}")
        assert missing == []

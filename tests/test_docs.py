"""Documentation quality gates.

The docs are a deliverable: these tests keep the top-level documents
present and truthful, and enforce docstring coverage across the public
surface — every module, every public class, every public function.
"""

import argparse
import importlib
import inspect
import os
import pkgutil
import subprocess
import sys
from pathlib import Path

import pytest

import repro

ROOT = Path(__file__).resolve().parent.parent


def walk_modules():
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name == "repro.__main__":  # runs the CLI on import
            continue
        names.append(info.name)
    return [importlib.import_module(n) for n in sorted(names)]


class TestDocumentsExist:
    @pytest.mark.parametrize(
        "name", ["README.md", "DESIGN.md", "EXPERIMENTS.md",
                 "docs/passes.md", "docs/machines.md",
                 "docs/architecture.md", "docs/observability.md",
                 "docs/benchmarking.md", "docs/verification.md",
                 "docs/engine.md", "docs/resilience.md",
                 "docs/kernels.md", "docs/telemetry.md",
                 "docs/serving.md"]
    )
    def test_document_present_and_substantial(self, name):
        path = ROOT / name
        assert path.exists(), f"{name} missing"
        assert len(path.read_text()) > 1500, f"{name} looks stubbed"

    def test_readme_covers_the_essentials(self):
        text = (ROOT / "README.md").read_text()
        for needle in ("Convergent Scheduling", "MICRO-35", "pip install",
                       "ConvergentScheduler", "EXPERIMENTS.md", "examples/"):
            assert needle in text

    def test_design_lists_every_experiment(self):
        text = (ROOT / "DESIGN.md").read_text()
        for needle in ("Table 2", "Fig. 6", "Fig. 7", "Fig. 8", "Fig. 9",
                       "Fig. 10", "Table 1"):
            assert needle in text

    def test_experiments_records_paper_vs_measured(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        assert "paper" in text.lower()
        assert "+21%" in text  # the paper's headline, for comparison
        assert "Known deviations" in text

    def test_passes_doc_covers_every_registered_pass(self):
        from repro.core.passes import PASS_REGISTRY

        text = (ROOT / "docs" / "passes.md").read_text()
        for name in PASS_REGISTRY:
            assert f"## {name}" in text, f"docs/passes.md missing {name}"

    def test_kernels_doc_covers_every_registered_pass(self):
        from repro.core.passes import PASS_REGISTRY

        text = (ROOT / "docs" / "kernels.md").read_text()
        for name in PASS_REGISTRY:
            assert f"## {name}" in text, f"docs/kernels.md missing {name}"
        for needle in ("RegionIndex", "bit-compat", "tobytes",
                       "np.add.at", "gathered_row_sums",
                       "region_hop_distances", "all_pairs",
                       "tests/test_core_kernels.py", "op order"):
            assert needle in text, f"docs/kernels.md missing {needle!r}"

    def test_passes_doc_references_the_kernel_layer(self):
        text = (ROOT / "docs" / "passes.md").read_text()
        for needle in ("repro.core.kernels", "kernels.md",
                       "_reference_update"):
            assert needle in text, f"docs/passes.md missing {needle!r}"

    def test_architecture_doc_references_the_kernel_layer(self):
        text = (ROOT / "docs" / "architecture.md").read_text()
        for needle in ("repro.core.kernels", "kernels.md", "RegionIndex"):
            assert needle in text, f"docs/architecture.md missing {needle!r}"

    def test_readme_documents_every_cli_verb(self):
        from repro.cli import build_parser

        text = (ROOT / "README.md").read_text()
        subparsers = next(
            a for a in build_parser()._actions
            if isinstance(a, argparse._SubParsersAction)
        )
        for verb in subparsers.choices:
            assert f"`{verb}`" in text, f"README.md missing CLI verb {verb}"

    def test_observability_doc_covers_the_cli_and_schema(self):
        text = (ROOT / "docs" / "observability.md").read_text()
        for needle in ("repro trace", "repro profile", "l1_churn",
                       "mean_entropy", "mean_confidence", "NullTracer",
                       "JSONL"):
            assert needle in text, f"docs/observability.md missing {needle!r}"

    def test_benchmarking_doc_covers_schema_and_policy(self):
        text = (ROOT / "docs" / "benchmarking.md").read_text()
        for needle in ("repro bench", "BENCH_", "schema_version",
                       "--against-latest", "--compare", "regressed",
                       "timing_noisy", "trace --diff",
                       "check_bench_schema"):
            assert needle in text, f"docs/benchmarking.md missing {needle!r}"

    def test_verification_doc_covers_checkers_and_codes(self):
        from repro.verify import DIAGNOSTIC_CODES

        text = (ROOT / "docs" / "verification.md").read_text()
        for needle in ("repro verify", "verify_ddg", "verify_schedule",
                       "verify_matrix", "verify_pass_contracts",
                       "verify=True", "VerificationError",
                       "check_diag_codes"):
            assert needle in text, f"docs/verification.md missing {needle!r}"
        for code in DIAGNOSTIC_CODES:
            assert f"`{code}`" in text, f"docs/verification.md missing {code}"

    def test_engine_doc_covers_pool_cache_and_cli(self):
        text = (ROOT / "docs" / "engine.md").read_text()
        for needle in ("CompilationEngine", "ScheduleCache", "schedule_key",
                       "FINGERPRINT_SCHEMA_VERSION", "--jobs", "--cache",
                       "check_fingerprint_schema", "tests/test_engine.py",
                       "LRU", "index"):
            assert needle in text, f"docs/engine.md missing {needle!r}"

    def test_resilience_doc_covers_the_machinery(self):
        text = (ROOT / "docs" / "resilience.md").read_text()
        for needle in ("Budget", "DeadlineExceeded", "RetryPolicy",
                       "ResilienceConfig", "min_level", "quarantine",
                       "repro cache", "repro resilience", "STATUS_TIMEOUT",
                       "run_resilience_campaign", "deadline_s",
                       "RESILIENCE_COUNTERS", "docs/engine.md"):
            assert needle in text, f"docs/resilience.md missing {needle!r}"

    def test_telemetry_doc_covers_ledger_and_verbs(self):
        text = (ROOT / "docs" / "telemetry.md").read_text()
        for needle in ("repro timeline", "repro trend", "--chrome-trace",
                       "--ledger", "QuantileHistogram", "FlightLedger",
                       "queue_wait_s", "execute_s", "p50", "p99",
                       "os.replace", "check_counter_names",
                       "TELEMETRY_NAMES", "compile_p50", "cache_hit_rate"):
            assert needle in text, f"docs/telemetry.md missing {needle!r}"

    def test_serving_doc_covers_protocol_and_policy(self):
        text = (ROOT / "docs" / "serving.md").read_text()
        for needle in ("repro serve", "repro loadtest", "/compile",
                       "/healthz", "/metrics", "compile_request",
                       "WIRE_SCHEMA_VERSION", "Retry-After", "429",
                       "coalesced", "adjacency", "--gate-p99-ms",
                       "--against-latest", "--mode open",
                       "check_counter_names", "FlightRecord"):
            assert needle in text, f"docs/serving.md missing {needle!r}"

    def test_serving_doc_is_cross_linked(self):
        for name in ("README.md", "docs/architecture.md"):
            text = (ROOT / name).read_text()
            assert "serving.md" in text, f"{name} does not link serving.md"

    def test_telemetry_doc_is_cross_linked(self):
        for name in ("docs/observability.md", "docs/engine.md", "README.md"):
            text = (ROOT / name).read_text()
            assert "telemetry.md" in text, f"{name} does not link telemetry.md"

    def test_engine_doc_links_resilience(self):
        text = (ROOT / "docs" / "engine.md").read_text()
        for needle in ("ResilienceConfig", "docs/resilience.md",
                       "deadline_s"):
            assert needle in text, f"docs/engine.md missing {needle!r}"

    def test_readme_documents_engine_flags(self):
        text = (ROOT / "README.md").read_text()
        for needle in ("--jobs", "--cache", "docs/engine.md"):
            assert needle in text, f"README.md missing {needle!r}"

    def test_readme_tracks_performance(self):
        text = (ROOT / "README.md").read_text()
        assert "Tracking performance" in text
        assert "docs/benchmarking.md" in text

    def test_architecture_doc_maps_every_package(self):
        text = (ROOT / "docs" / "architecture.md").read_text()
        packages = [
            p.name for p in (ROOT / "src" / "repro").iterdir()
            if p.is_dir() and (p / "__init__.py").exists()
        ]
        for package in packages:
            assert f"repro.{package}" in text, (
                f"docs/architecture.md missing repro.{package}"
            )


class TestAudits:
    """The scripts/ audits double as tests so CI and pytest agree."""

    def _run(self, script):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(ROOT / "src")
        return subprocess.run(
            [sys.executable, str(ROOT / "scripts" / script)],
            capture_output=True, text=True, env=env, cwd=ROOT,
        )

    def test_docstring_audit_passes(self):
        proc = self._run("check_docstrings.py")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_link_audit_passes(self):
        proc = self._run("check_links.py")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_bench_schema_audit_passes(self):
        proc = self._run("check_bench_schema.py")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_counter_name_audit_passes(self):
        proc = self._run("check_counter_names.py")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_diag_code_audit_passes(self):
        proc = self._run("check_diag_codes.py")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_fingerprint_schema_audit_passes(self):
        proc = self._run("check_fingerprint_schema.py")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_pass_docs_audit_passes(self):
        proc = self._run("check_pass_docs.py")
        assert proc.returncode == 0, proc.stdout + proc.stderr


class TestDocstringCoverage:
    def test_every_module_has_a_docstring(self):
        missing = [m.__name__ for m in walk_modules() if not inspect.getdoc(m)]
        assert missing == []

    def test_every_public_class_documented(self):
        missing = []
        for module in walk_modules():
            for name, obj in vars(module).items():
                if name.startswith("_") or not inspect.isclass(obj):
                    continue
                if obj.__module__ != module.__name__:
                    continue  # re-export
                if not inspect.getdoc(obj):
                    missing.append(f"{module.__name__}.{name}")
        assert missing == []

    def test_every_public_function_documented(self):
        missing = []
        for module in walk_modules():
            for name, obj in vars(module).items():
                if name.startswith("_") or not inspect.isfunction(obj):
                    continue
                if obj.__module__ != module.__name__:
                    continue
                if not inspect.getdoc(obj):
                    missing.append(f"{module.__name__}.{name}")
        assert missing == []

    def test_public_methods_of_core_classes_documented(self):
        from repro.core.convergent import ConvergentScheduler
        from repro.core.weights import PreferenceMatrix
        from repro.ir.ddg import DataDependenceGraph
        from repro.schedulers.list_scheduler import ListScheduler
        from repro.sim.simulator import SimulationReport

        missing = []
        for cls in (PreferenceMatrix, DataDependenceGraph, ListScheduler,
                    ConvergentScheduler, SimulationReport):
            for name, member in vars(cls).items():
                if name.startswith("_"):
                    continue
                if inspect.isfunction(member) and not inspect.getdoc(member):
                    missing.append(f"{cls.__name__}.{name}")
        assert missing == []

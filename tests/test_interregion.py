"""Unit tests for inter-region home assignment."""

import pytest

from repro.core import ConvergentScheduler
from repro.ir import Opcode, RegionBuilder
from repro.ir.regions import Program
from repro.machine import RawMachine
from repro.sim import simulate
from repro.workloads import apply_congruence
from repro.workloads.interregion import (
    assign_cross_region_homes,
    cross_region_affinity,
)


def producer_consumer_program():
    """Region A computes v near bank-3 anchors; region B consumes it
    near bank-3 anchors too: v's natural home is bank 3's cluster."""
    a = RegionBuilder("producer")
    x = a.load(bank=3, array="src", name="src")
    v = a.fadd(x, x)
    a.live_out(v, name="v")
    b = RegionBuilder("consumer")
    vin = b.live_in(name="v")
    y = b.load(bank=3, array="other", name="other")
    b.store(b.fmul(vin, y), bank=3, array="dst")
    return Program("pc", [a.build(), b.build()])


class TestAffinity:
    def test_affinity_points_at_anchored_cluster(self, raw4):
        program = producer_consumer_program()
        apply_congruence(program, raw4)
        affinity = cross_region_affinity(program, raw4)
        assert "v" in affinity
        assert affinity["v"].argmax() == 3

    def test_no_anchors_no_affinity(self, raw4):
        b = RegionBuilder("r")
        x = b.live_in(name="x")
        b.live_out(b.fadd(x, x), name="y")
        program = Program("p", [b.build()])
        affinity = cross_region_affinity(program, raw4)
        assert all(v.sum() == 0 for v in affinity.values()) or not affinity


class TestAssignment:
    def test_opinionated_value_gets_its_cluster(self, raw4):
        program = producer_consumer_program()
        homes = assign_cross_region_homes(program, raw4)
        assert homes["v"] == 3
        # Both endpoints are annotated consistently.
        for region in program.regions:
            for uid in region.live_ins() + region.live_outs():
                inst = region.ddg.instruction(uid)
                if inst.name == "v":
                    assert inst.home_cluster == 3

    def test_unopinionated_values_spread(self, raw4):
        b = RegionBuilder("r")
        for i in range(8):
            x = b.live_in(name=f"u{i}")
            b.live_out(b.fadd(x, x), name=f"w{i}")
        program = Program("p", [b.build()])
        homes = assign_cross_region_homes(program, raw4)
        assert len(set(homes.values())) == raw4.n_clusters

    def test_regions_still_schedule(self, raw4):
        program = producer_consumer_program()
        assign_cross_region_homes(program, raw4)
        for region in program.regions:
            schedule = ConvergentScheduler().schedule(region, raw4)
            assert simulate(region, raw4, schedule).ok

    def test_beats_or_matches_round_robin_on_affinity_program(self, raw4):
        smart = producer_consumer_program()
        assign_cross_region_homes(smart, raw4)
        naive = producer_consumer_program()
        apply_congruence(naive, raw4)
        scheduler = ConvergentScheduler()

        def total(program):
            cycles = 0
            for region in program.regions:
                schedule = scheduler.schedule(region, raw4)
                cycles += simulate(region, raw4, schedule).cycles
            return cycles

        assert total(smart) <= total(naive)

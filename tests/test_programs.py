"""Unit tests for the multi-region whole-program workloads."""

import pytest

from repro.core import ConvergentScheduler
from repro.harness import run_program
from repro.machine import RawMachine, raw_with_tiles
from repro.sim import simulate
from repro.workloads import apply_congruence, assign_cross_region_homes
from repro.workloads.programs import partial_sums_program, stencil_pipeline


class TestPartialSums:
    def test_structure(self):
        program = partial_sums_program(chunks=4, per_chunk=8)
        assert len(program.regions) == 5
        combine = program.regions[-1]
        assert len(combine.live_ins()) == 4

    def test_partials_connect_regions_by_name(self):
        program = partial_sums_program(chunks=3)
        outs = {
            program.regions[c].ddg.instruction(u).name
            for c in range(3)
            for u in program.regions[c].live_outs()
        }
        ins = {
            program.regions[-1].ddg.instruction(u).name
            for u in program.regions[-1].live_ins()
        }
        assert outs == ins == {"partial0", "partial1", "partial2"}

    def test_whole_program_runs_on_raw(self):
        machine = raw_with_tiles(4)
        program = partial_sums_program(chunks=4, per_chunk=8, banks=4)
        apply_congruence(program, machine)
        result = run_program(program, machine, ConvergentScheduler())
        assert result.cycles > 0

    def test_affinity_homes_follow_chunk_banks(self):
        machine = raw_with_tiles(4)
        program = partial_sums_program(chunks=4, per_chunk=4, banks=16)
        homes = assign_cross_region_homes(program, machine)
        # Chunk k loads banks 4k..4k+3, all congruent to distinct tiles;
        # each partial should live near its own chunk, hence homes differ.
        assert len(set(homes.values())) > 1

    def test_affinity_assignment_not_worse_than_convention(self):
        def total_cycles(program, machine):
            result = run_program(program, machine, ConvergentScheduler())
            return result.cycles

        machine = raw_with_tiles(4)
        smart = partial_sums_program(chunks=4, per_chunk=8, banks=4)
        assign_cross_region_homes(smart, machine)
        naive = partial_sums_program(chunks=4, per_chunk=8, banks=4)
        apply_congruence(naive, machine)
        assert total_cycles(smart, machine) <= total_cycles(naive, machine) * 1.05


class TestStencilPipeline:
    def test_boundary_values_link_stages(self):
        program = stencil_pipeline(stages=3, width=6)
        assert len(program.regions) == 3
        for stage in range(1, 3):
            names = {
                program.regions[stage].ddg.instruction(u).name
                for u in program.regions[stage].live_ins()
            }
            assert names == {f"lo{stage}", f"hi{stage}"}

    def test_every_stage_schedules(self, raw4):
        program = stencil_pipeline(stages=3, width=6, banks=4)
        apply_congruence(program, raw4)
        for region in program.regions:
            schedule = ConvergentScheduler().schedule(region, raw4)
            assert simulate(region, raw4, schedule).ok

    def test_regions_validate(self):
        for region in stencil_pipeline().regions:
            region.ddg.validate()

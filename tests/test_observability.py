"""Tests for the observability layer.

Covers the three acceptance properties: JSONL round-trips (tracer
records and :class:`ConvergenceTrace`), null-tracer behavior-neutrality
(cycle-identical schedules with tracing off vs. on), and metric
correctness on a hand-built three-instruction region.
"""

import json
import math

import numpy as np
import pytest

from repro.core import ConvergentScheduler, PreferenceMatrix
from repro.core.guard import GuardEvent
from repro.core.metrics import ConvergenceTrace
from repro.machine import ClusteredVLIW, raw_with_tiles
from repro.observability import (
    NULL_TRACER,
    Histogram,
    MetricsRegistry,
    NullTracer,
    Tracer,
    TraceRecord,
    active,
    install,
    instrumented,
    matrix_delta,
    pass_spans,
    read_jsonl,
    render_profile,
    render_trace,
    sparkline,
    timed,
    trace_to_registry,
    tracing,
    uninstall,
)
from repro.workloads import build_benchmark


class TestTracer:
    def test_span_records_duration_and_fields(self):
        # calls: epoch, span start offset, span start, span end
        clock = iter([0.0, 1.0, 2.0, 4.5]).__next__
        tracer = Tracer(clock=clock)
        with tracer.span("phase", color="blue"):
            pass
        (record,) = tracer.records
        assert record.name == "phase"
        assert record.kind == "span"
        assert record.duration_s == pytest.approx(2.5)
        assert record.fields["color"] == "blue"

    def test_spans_nest_with_depth(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.records  # inner closes first
        assert (outer.name, outer.depth) == ("outer", 0)
        assert (inner.name, inner.depth) == ("inner", 1)

    def test_events_are_immediate(self):
        tracer = Tracer()
        tracer.event("tick", n=3)
        assert tracer.events("tick")[0].fields["n"] == 3
        assert tracer.records[0].duration_s is None

    def test_total_seconds_sums_by_name(self):
        clock = iter([0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 4.0]).__next__
        tracer = Tracer(clock=clock)
        with tracer.span("work"):
            pass
        with tracer.span("work"):
            pass
        assert tracer.total_seconds("work") == pytest.approx(4.0)

    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("converge", region="r0", n=7):
            tracer.event("guard", pass_name="NOISE", guard_kind="health")
        path = tmp_path / "trace.jsonl"
        tracer.write(path)
        back = read_jsonl(path)
        assert [r.to_dict() for r in back] == [r.to_dict() for r in tracer.records]
        # every line is standalone JSON
        for line in path.read_text().strip().splitlines():
            assert json.loads(line)["kind"] in ("span", "event")

    def test_read_jsonl_accepts_literal_text(self):
        tracer = Tracer()
        tracer.event("x", value=1)
        records = read_jsonl(tracer.to_jsonl())
        assert records[0].fields["value"] == 1

    def test_non_json_fields_are_coerced(self):
        tracer = Tracer()
        tracer.event("x", arr=np.float64(2.5), obj=object())
        data = tracer.records[0].to_dict()
        assert data["arr"] == 2.5
        assert isinstance(data["obj"], str)


class TestNullTracer:
    def test_is_disabled_and_silent(self):
        tracer = NullTracer()
        with tracer.span("anything", a=1):
            tracer.event("whatever")
        assert tracer.records == []
        assert not tracer.enabled

    def test_ambient_default_is_null(self):
        uninstall()
        assert active() is NULL_TRACER

    def test_install_and_context_manager(self):
        tracer = Tracer()
        install(tracer)
        try:
            assert active() is tracer
        finally:
            uninstall()
        with tracing(tracer):
            with timed("phase"):
                pass
            assert active() is tracer
        assert active() is NULL_TRACER
        assert tracer.spans("phase")

    def test_instrumented_decorator(self):
        @instrumented("add_op", flavor="test")
        def add(a, b):
            return a + b

        tracer = Tracer()
        with tracing(tracer):
            assert add(2, 3) == 5
        (span,) = tracer.spans("add_op")
        assert span.fields["flavor"] == "test"
        # with no ambient tracer it's a plain call
        assert add(1, 1) == 2
        assert len(tracer.records) == 1


class TestNeutrality:
    """Tracing must never change what gets scheduled."""

    @pytest.mark.parametrize(
        "machine,bench",
        [(ClusteredVLIW(4), "vvmul"), (raw_with_tiles(16), "jacobi")],
    )
    def test_traced_run_is_cycle_identical(self, machine, bench):
        region = build_benchmark(bench, machine).regions[0]
        plain = ConvergentScheduler().converge(region, machine)
        traced = ConvergentScheduler(tracer=Tracer()).converge(region, machine)
        assert plain.schedule.makespan == traced.schedule.makespan
        assert plain.assignment == traced.assignment
        assert plain.priorities == traced.priorities

    def test_null_tracer_computes_no_metrics(self):
        machine = ClusteredVLIW(4)
        region = build_benchmark("vvmul", machine).regions[0]
        result = ConvergentScheduler().converge(region, machine)
        # without a tracer the rich PassRecord fields stay at defaults
        assert all(r.wall_seconds == 0.0 for r in result.trace.records)
        assert all(r.l1_churn == 0.0 for r in result.trace.records)

    def test_traced_run_populates_pass_records(self):
        machine = ClusteredVLIW(4)
        region = build_benchmark("vvmul", machine).regions[0]
        tracer = Tracer()
        result = ConvergentScheduler(tracer=tracer).converge(region, machine)
        records = result.trace.records
        assert any(r.wall_seconds > 0 for r in records)
        assert any(r.l1_churn > 0 for r in records)
        assert any(r.mean_confidence > 0 for r in records)
        # span vocabulary: converge + one span per executed pass + phases
        assert len(tracer.spans("converge")) == 1
        assert len(pass_spans(tracer.records)) == len(records)
        assert tracer.spans("list_schedule") and tracer.spans("extract_assignment")


class TestMatrixDelta:
    """Metric correctness on a hand-built 3-instruction matrix."""

    def make_matrix(self):
        # 3 instructions, 2 clusters, 2 time slots, uniform = 0.125 each
        return PreferenceMatrix(3, 2, 2)

    def test_no_change_is_all_zero(self):
        m = self.make_matrix()
        delta = matrix_delta(m.checkpoint(), m.preferred_clusters(), m)
        assert delta["l1_churn"] == 0.0
        assert delta["flips"] == 0
        assert delta["flip_fraction"] == 0.0
        assert delta["mean_entropy"] == pytest.approx(1.0)  # fully uniform

    def test_single_flip_counted_and_churn_exact(self):
        m = self.make_matrix()
        before_w = m.checkpoint()
        before_p = m.preferred_clusters()  # ties -> cluster 0
        # move instruction 1 entirely to cluster 1: weights become
        # 0 on cluster 0, 0.25 on each slot of cluster 1
        m.scale(1, 0.0, cluster=0)
        m.normalize()
        delta = matrix_delta(before_w, before_p, m)
        assert delta["flips"] == 1
        assert delta["flip_fraction"] == pytest.approx(1 / 3)
        # row 1 L1: |0-0.125|*2 + |0.5-0.125|*2 = 1.0, averaged over 3
        assert delta["l1_churn"] == pytest.approx(1.0 / 3)

    def test_entropy_and_confidence_reflect_sharpness(self):
        m = self.make_matrix()
        for i in range(3):
            m.scale(i, 0.0, cluster=0)
        m.normalize()
        assert m.mean_entropy() == pytest.approx(0.0)  # fully decided
        assert m.mean_confidence() == pytest.approx(100.0)  # clamped inf
        half = self.make_matrix()
        assert half.mean_entropy() == pytest.approx(1.0)
        assert half.mean_confidence() == pytest.approx(1.0)

    def test_entropies_normalized_by_cluster_count(self):
        m = PreferenceMatrix(2, 4, 1)
        assert np.allclose(m.entropies(), 1.0)
        one = PreferenceMatrix(2, 1, 3)
        assert np.allclose(one.entropies(), 0.0)

    def test_empty_matrix(self):
        m = PreferenceMatrix(0, 2, 2)
        delta = matrix_delta(m.checkpoint(), [], m)
        assert delta == {
            "l1_churn": 0.0,
            "flips": 0,
            "flip_fraction": 0.0,
            "mean_entropy": 0.0,
            "mean_confidence": 0.0,
        }


class TestConvergenceTraceJsonl:
    def test_round_trip_preserves_records_and_guard_events(self):
        m = PreferenceMatrix(4, 3, 5)
        trace = ConvergenceTrace()
        trace.observe_initial(m)
        m.scale(0, 10.0, cluster=2)
        m.normalize()
        record = trace.observe_pass("PATH", m)
        record.wall_seconds = 0.25
        record.l1_churn = 1.5
        record.flips = 1
        record.mean_entropy = 0.7
        record.mean_confidence = 3.0
        trace.observe_guard_event(
            GuardEvent("NOISE", 0, "health", "NaN weight in instruction 2's row")
        )
        back = ConvergenceTrace.from_jsonl(trace.to_jsonl())
        assert len(back.records) == 1
        r = back.records[0]
        assert (r.pass_name, r.flips, r.wall_seconds) == ("PATH", 1, 0.25)
        assert r.changed_fraction == pytest.approx(record.changed_fraction)
        assert r.l1_churn == 1.5 and r.mean_confidence == 3.0
        (event,) = back.guard_events
        assert event.pass_name == "NOISE" and event.kind == "health"
        assert back.degraded

    def test_real_run_round_trips(self):
        machine = ClusteredVLIW(4)
        region = build_benchmark("vvmul", machine).regions[0]
        result = ConvergentScheduler(tracer=Tracer()).converge(region, machine)
        back = ConvergenceTrace.from_jsonl(result.trace.to_jsonl())
        assert [r.to_dict() for r in back.records] == [
            r.to_dict() for r in result.trace.records
        ]


class TestMetricsRegistry:
    def test_counters_and_histograms(self):
        reg = MetricsRegistry()
        reg.inc("regions.ok")
        reg.inc("regions.ok", 2)
        reg.observe("cycles", 10)
        reg.observe("cycles", 30)
        assert reg.counter("regions.ok") == 3
        assert reg.counter("missing") == 0
        h = reg.histogram("cycles")
        assert (h.count, h.mean, h.min, h.max) == (2, 20.0, 10.0, 30.0)

    def test_snapshot_round_trip(self):
        reg = MetricsRegistry()
        reg.inc("a", 5)
        reg.observe("b", 1.5)
        snap = reg.snapshot()
        json.dumps(snap)  # must be JSON-safe
        back = MetricsRegistry.from_snapshot(snap)
        assert back.counter("a") == 5
        assert back.histogram("b").total == 1.5

    def test_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("n")
        a.observe("x", 1.0)
        b.inc("n", 4)
        b.observe("x", 3.0)
        a.merge(b)
        assert a.counter("n") == 5
        assert a.histogram("x").max == 3.0

    def test_empty_histogram_dict_is_finite(self):
        h = Histogram()
        d = h.to_dict()
        assert d["min"] == 0.0 and d["max"] == 0.0 and d["mean"] == 0.0
        assert Histogram.from_dict(d).count == 0

    def test_trace_to_registry(self):
        tracer = Tracer()
        with tracer.span("simulate"):
            pass
        tracer.event("guard")
        reg = trace_to_registry(tracer.records)
        assert reg.counter("span.simulate") == 1
        assert reg.counter("event.guard") == 1
        assert reg.histogram("span.simulate.seconds").count == 1


class TestHarnessIntegration:
    def test_run_program_attaches_metrics(self):
        from repro.harness import load_result, run_program, save_result

        machine = ClusteredVLIW(4)
        program = build_benchmark("vvmul", machine)
        reg = MetricsRegistry()
        result = run_program(
            program, machine, ConvergentScheduler(), check_values=False, registry=reg
        )
        assert result.metrics is not None
        assert result.metrics["counters"]["regions.ok"] == len(program.regions)
        assert result.metrics["histograms"]["region.cycles"]["count"] >= 1

    def test_metrics_survive_results_round_trip(self, tmp_path):
        from repro.harness import load_result, run_program, save_result

        machine = ClusteredVLIW(4)
        program = build_benchmark("vvmul", machine)
        result = run_program(
            program,
            machine,
            ConvergentScheduler(),
            check_values=False,
            registry=MetricsRegistry(),
        )
        save_result(result, tmp_path / "r.json")
        back = load_result(tmp_path / "r.json")
        assert back.metrics == result.metrics

    def test_format_metrics_renders_and_is_safe_on_none(self):
        from repro.harness import format_metrics

        assert format_metrics(None) == ""
        assert format_metrics({"counters": {}, "histograms": {}}) == ""
        reg = MetricsRegistry()
        reg.inc("regions.ok", 2)
        reg.observe("region.cycles", 34.0)
        text = format_metrics(reg.snapshot())
        assert "regions.ok = 2" in text
        assert "region.cycles" in text

    def test_ambient_tracing_captures_simulate(self):
        machine = ClusteredVLIW(4)
        program = build_benchmark("vvmul", machine)
        from repro.harness import run_program

        tracer = Tracer()
        with tracing(tracer):
            run_program(program, machine, ConvergentScheduler(), check_values=False)
        assert tracer.spans("simulate")
        assert tracer.spans("converge")


class TestRendering:
    def test_sparkline_scales(self):
        assert sparkline([]) == ""
        assert sparkline([1.0, 1.0]) == "██"
        line = sparkline([0.0, 0.5, 1.0])
        assert len(line) == 3
        assert line[0] == "▁" and line[-1] == "█"

    def test_render_trace_and_profile_on_real_run(self):
        machine = ClusteredVLIW(4)
        region = build_benchmark("vvmul", machine).regions[0]
        tracer = Tracer()
        ConvergentScheduler(tracer=tracer).converge(region, machine)
        trace_text = render_trace(tracer.records)
        assert "confidence" in trace_text and "PATHPROP" in trace_text
        assert "confidence/pass" in trace_text
        profile_text = render_profile(tracer.records)
        assert "converge" in profile_text and "share" in profile_text
        assert "total (top-level)" in profile_text

    def test_render_trace_shows_guard_events(self):
        tracer = Tracer()
        tracer.event(
            "guard", pass_name="NOISE", round=0, guard_kind="health", detail="NaN"
        )
        text = render_trace(tracer.records)
        assert "! guard: NOISE" in text


class TestCliVerbs:
    def test_trace_verb(self, capsys, tmp_path):
        from repro.cli import main

        out_path = tmp_path / "t.jsonl"
        assert main(["trace", "vvmul", "--machine", "vliw4",
                     "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "convergence trace" in out and "final schedule" in out
        records = read_jsonl(out_path)
        assert pass_spans(records)

    def test_trace_verb_bad_region(self, capsys):
        from repro.cli import main

        assert main(["trace", "vvmul", "--region", "9"]) == 2

    def test_profile_verb(self, capsys):
        from repro.cli import main

        assert main(["profile", "vvmul", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "compile-time profile" in out
        assert "list_schedule" in out
        assert "regions.ok" in out

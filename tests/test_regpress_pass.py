"""Unit tests for the REGPRESS convergent pass."""

import numpy as np
import pytest

from repro.core import PreferenceMatrix, make_pass
from repro.core.passes import PassContext, RegisterPressure
from repro.ir import RegionBuilder
from repro.machine import ClusteredVLIW


def make_ctx(region, machine, seed=0):
    matrix = PreferenceMatrix.for_region(region.ddg, machine.n_clusters)
    return PassContext(
        ddg=region.ddg, machine=machine, matrix=matrix,
        rng=np.random.default_rng(seed),
    )


def long_lived_values(n=24):
    """Many values defined early and consumed at the end: high pressure."""
    b = RegionBuilder("pressure")
    values = [b.li(float(i)) for i in range(n)]
    total = b.reduce(values)
    b.live_out(total)
    return b.build()


class TestRegisterPressure:
    def test_registered_in_pass_registry(self):
        p = make_pass("REGPRESS(strength=2.0)")
        assert isinstance(p, RegisterPressure)
        assert p.strength == 2.0

    def test_negative_strength_rejected(self):
        with pytest.raises(ValueError):
            RegisterPressure(strength=-1)

    def test_expected_pressure_positive(self, vliw4):
        region = long_lived_values()
        ctx = make_ctx(region, vliw4)
        pressure = RegisterPressure().expected_pressure(ctx)
        assert pressure.shape == (4,)
        assert np.all(pressure > 0)

    def test_noop_when_within_budget(self, vliw4):
        region = long_lived_values(n=8)
        ctx = make_ctx(region, vliw4)
        before = ctx.matrix.data.copy()
        RegisterPressure().apply(ctx)
        assert np.allclose(ctx.matrix.data, before)

    def test_relieves_oversubscribed_cluster(self):
        tiny = ClusteredVLIW(4, registers=4)
        region = long_lived_values(n=40)
        ctx = make_ctx(region, tiny)
        # Pile everything onto cluster 0.
        ctx.matrix.data[:, 0, :] *= 50
        ctx.matrix.touch()
        ctx.matrix.normalize()
        pass_ = RegisterPressure(strength=4.0)
        before = pass_.expected_pressure(ctx)[0]
        pass_.apply(ctx)
        after = pass_.expected_pressure(ctx)[0]
        assert after < before

    def test_invariants_preserved(self):
        tiny = ClusteredVLIW(2, registers=2)
        region = long_lived_values(n=30)
        ctx = make_ctx(region, tiny)
        RegisterPressure().apply(ctx)
        ctx.matrix.normalize()
        ctx.matrix.check_invariants()

    def test_reduces_peak_pressure_end_to_end(self):
        """With REGPRESS in the sequence, the scheduled peak pressure on
        a register-starved machine should not increase."""
        from repro.core import ConvergentScheduler, TUNED_VLIW_SEQUENCE
        from repro.regalloc import pressure_profile
        from repro.sim import simulate

        machine = ClusteredVLIW(4, registers=8)
        without = ConvergentScheduler().converge(long_lived_values(n=32), machine)
        augmented = list(TUNED_VLIW_SEQUENCE[:-1]) + [
            "REGPRESS(strength=4.0)",
            TUNED_VLIW_SEQUENCE[-1],
        ]
        region = long_lived_values(n=32)
        with_pass = ConvergentScheduler(passes=augmented).converge(region, machine)
        simulate(region, machine, with_pass.schedule)
        peak_without = max(
            pressure_profile(
                long_lived_values(n=32), machine, without.schedule
            ).max_pressure.values()
        )
        peak_with = max(
            pressure_profile(region, machine, with_pass.schedule).max_pressure.values()
        )
        assert peak_with <= peak_without + 2

"""Kernel ≡ scalar-reference equivalence suite for :mod:`repro.core.kernels`.

Every registered pass keeps its original per-instruction update rule as
``_reference_update``; the vectorized ``apply`` must reproduce it
**bit-for-bit** (``tobytes()`` equality, not ``allclose``).  Three layers
of checks:

* lockstep property tests on random DAGs × machines × seeds, running
  the full 12-pass registry through both paths;
* unit tests for the shared primitives (``RegionIndex``, grouped BFS,
  ``gathered_row_sums``, PATHPROP step tables) including the
  SciPy-absent fallback path;
* a re-run of the V4xx pass-contract fixtures against the vectorized
  passes.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.core.kernels as K
from repro.core.kernels import (
    _first_min_steps,
    _min_reduce_groups,
    _pathprop_walk,
    build_region_index,
    gathered_row_sums,
    grouped_hop_distances,
    hop_distances,
    region_hop_distances,
)
from repro.core.passes import PASS_REGISTRY, PassContext, make_pass
from repro.core.sequences import RAW_SEQUENCE, TUNED_VLIW_SEQUENCE
from repro.core.weights import PreferenceMatrix
from repro.ir.regions import Program
from repro.machine import ClusteredVLIW
from repro.machine.raw import raw_with_tiles
from repro.schedulers.list_scheduler import feasible_clusters
from repro.verify import verify_pass_contracts
from repro.workloads import apply_congruence, build_benchmark

from .test_properties import random_dags

#: Every registered pass, in a sequence that lets each one see a matrix
#: already shaped by the others (INITTIME first, as in every published
#: sequence).
ALL_PASSES = [
    "INITTIME",
    "NOISE",
    "PLACE",
    "FIRST",
    "EMPHCP",
    "PATH",
    "COMM",
    "PLACEPROP",
    "LOAD",
    "LEVEL",
    "PATHPROP",
    "REGPRESS",
]

MACHINES = {
    "raw4": raw_with_tiles(4),
    "vliw4": ClusteredVLIW(4),
    # Heterogeneous: INITTIME actually squashes infeasible clusters.
    "vliw4het": ClusteredVLIW(4, fp_clusters=(0, 2)),
}


def _lockstep(region, machine, specs, seed=0):
    """Run ``specs`` through apply and _reference_update side by side.

    Asserts byte equality of the two matrices after every single pass,
    so a divergence is attributed to the pass that introduced it.
    """
    apply_congruence(Program("p", [region]), machine)
    ddg = region.ddg
    vec = PreferenceMatrix.for_region(ddg, machine.n_clusters)
    ref = PreferenceMatrix.for_region(ddg, machine.n_clusters)
    ctx_vec = PassContext(
        ddg=ddg, machine=machine, matrix=vec, rng=np.random.default_rng(seed)
    )
    ctx_ref = PassContext(
        ddg=ddg, machine=machine, matrix=ref, rng=np.random.default_rng(seed)
    )
    for spec in specs:
        scheduling_pass = make_pass(spec)
        scheduling_pass.apply(ctx_vec)
        vec.normalize()
        scheduling_pass._reference_update(ctx_ref)
        ref.normalize()
        assert vec.data.tobytes() == ref.data.tobytes(), (
            f"kernel diverged from scalar reference in {spec}"
        )
    return vec


class TestEveryPassHasReference:
    def test_registry_is_fully_covered(self):
        """ALL_PASSES is exactly the registry, and each has an oracle."""
        assert sorted(ALL_PASSES) == sorted(PASS_REGISTRY)
        for name, factory in PASS_REGISTRY.items():
            assert hasattr(factory(), "_reference_update"), name


class TestLockstepEquivalence:
    @given(
        random_dags(max_nodes=30),
        st.sampled_from(sorted(MACHINES)),
        st.integers(0, 2**31),
    )
    @settings(max_examples=25, deadline=None)
    def test_all_passes_bitwise_equal_on_random_dags(
        self, region, machine_key, seed
    ):
        _lockstep(region, MACHINES[machine_key], ALL_PASSES, seed=seed)

    @given(random_dags(max_nodes=25), st.integers(0, 2**31))
    @settings(max_examples=10, deadline=None)
    def test_non_default_parameters_stay_equivalent(self, region, seed):
        specs = [
            "INITTIME",
            "NOISE(amount=0.5)",
            "PATH(paths=2)",
            "LEVEL(stride=2, granularity=1)",
            "COMM(sharpen=1.0)",
            "PATHPROP",
        ]
        _lockstep(region, MACHINES["raw4"], specs, seed=seed)

    @pytest.mark.parametrize("bench", ["cholesky", "vvmul"])
    @pytest.mark.parametrize(
        "machine_key,sequence",
        [("raw4", RAW_SEQUENCE), ("vliw4", TUNED_VLIW_SEQUENCE)],
    )
    def test_benchmark_regions_bitwise_equal(self, bench, machine_key, sequence):
        machine = MACHINES[machine_key]
        program = build_benchmark(bench, machine)
        for region in program.regions:
            _lockstep(region, machine, list(sequence))

    def test_numpy_bfs_fallback_stays_equivalent(self, monkeypatch):
        """With SciPy masked out, kernels fall back to the numpy BFS and
        still match the scalar reference bit-for-bit."""
        monkeypatch.setattr(K, "_scipy_dijkstra", None)
        machine = MACHINES["raw4"]
        program = build_benchmark("vvmul", machine)
        for region in program.regions:
            _lockstep(region, machine, list(RAW_SEQUENCE))


class TestRegionIndex:
    @pytest.fixture(scope="class")
    def indexed(self):
        machine = raw_with_tiles(4)
        program = build_benchmark("cholesky", machine)
        region = program.regions[0]
        return region.ddg, machine, build_region_index(region.ddg, machine)

    def test_csr_mirrors_edge_lists(self, indexed):
        ddg, _, index = indexed
        for i in range(index.n):
            succ = index.succ_indices[
                index.succ_indptr[i] : index.succ_indptr[i + 1]
            ].tolist()
            assert succ == [e.dst for e in ddg.successors(i)]
            pred = index.pred_indices[
                index.pred_indptr[i] : index.pred_indptr[i + 1]
            ].tolist()
            assert pred == [e.src for e in ddg.predecessors(i)]
            adj = index.adj_indices[
                index.adj_indptr[i] : index.adj_indptr[i + 1]
            ].tolist()
            assert adj == ddg.neighbors(i)

    def test_feasible_and_homes_match_source_of_truth(self, indexed):
        ddg, machine, index = indexed
        for inst in ddg:
            legal = set(feasible_clusters(inst, machine))
            assert set(np.flatnonzero(index.feasible[inst.uid])) == legal
            home = inst.home_cluster if inst.home_cluster is not None else -1
            assert index.homes[inst.uid] == home
        assert index.preplaced.tolist() == ddg.preplaced()

    def test_all_pairs_rows_are_exact_distances(self, indexed):
        ddg, _, index = indexed
        if index.all_pairs is None:
            pytest.skip("SciPy not available: no all-pairs precompute")
        assert index.all_pairs.shape == (index.n, index.n)
        for src in (0, index.n // 2, index.n - 1):
            expected = np.asarray(ddg.undirected_distances([src]))
            assert np.array_equal(index.all_pairs[src], expected)

    def test_all_pairs_respects_size_cap(self, monkeypatch, indexed):
        ddg, machine, _ = indexed
        monkeypatch.setattr(K, "_ALL_PAIRS_MAX_NODES", 0)
        assert build_region_index(ddg, machine).all_pairs is None


class TestHopDistances:
    @pytest.fixture(scope="class")
    def indexed(self):
        machine = raw_with_tiles(4)
        program = build_benchmark("tomcatv", machine)
        region = program.regions[0]
        return region.ddg, build_region_index(region.ddg, machine)

    GROUPS = [[0], [], [0, 1, 2], [3, 3, 5]]  # singleton/empty/multi/dupes

    def test_grouped_rows_match_ddg_reference(self, indexed):
        ddg, index = indexed
        dist = region_hop_distances(index, self.GROUPS)
        for g, group in enumerate(self.GROUPS):
            if not group:
                assert np.all(dist[g] == index.n)
            else:
                expected = np.asarray(ddg.undirected_distances(group))
                assert np.array_equal(dist[g], expected)

    def test_scipy_and_numpy_sweeps_agree(self, monkeypatch, indexed):
        _, index = indexed
        fast = grouped_hop_distances(
            index.adj_indptr, index.adj_indices, self.GROUPS, index.n
        )
        monkeypatch.setattr(K, "_scipy_dijkstra", None)
        slow = grouped_hop_distances(
            index.adj_indptr, index.adj_indices, self.GROUPS, index.n
        )
        assert np.array_equal(fast, slow)

    def test_max_depth_cap_commutes_with_all_pairs_lookup(self, indexed):
        _, index = indexed
        for cap in (0, 1, 3):
            capped = region_hop_distances(index, self.GROUPS, max_depth=cap)
            swept = grouped_hop_distances(
                index.adj_indptr, index.adj_indices, self.GROUPS, index.n, cap
            )
            assert np.array_equal(capped, swept)
            assert np.all((capped <= cap) | (capped == index.n))

    def test_single_group_wrapper(self, indexed):
        ddg, index = indexed
        assert np.array_equal(
            hop_distances(index, [0, 4]),
            np.asarray(ddg.undirected_distances([0, 4])),
        )

    def test_min_reduce_groups_is_elementwise_min(self):
        rows = np.array([[3, 1], [2, 5], [9, 9]], dtype=np.int64)
        dist = np.full((3, 2), 7, dtype=np.int64)
        out = _min_reduce_groups(dist, rows, [1, 2, 0])
        assert out.tolist() == [[3, 1], [2, 5], [7, 7]]


class TestGatheredRowSums:
    @pytest.mark.parametrize("width", [1, 2, 4])
    def test_matches_per_segment_reference(self, width):
        rng = np.random.default_rng(7)
        values = rng.random((6, width))
        lists = [[0, 1, 2], [], [5, 5], [4], [3, 0, 1, 2, 5]]
        indptr = np.cumsum([0] + [len(s) for s in lists]).astype(np.int64)
        indices = np.asarray(
            [v for s in lists for v in s], dtype=np.int64
        )
        out = gathered_row_sums(values, indptr, indices)
        for s, seg in enumerate(lists):
            expected = (
                values[list(seg)].sum(axis=0) if seg else np.zeros(width)
            )
            assert out[s].tobytes() == expected.tobytes()

    def test_empty_segments_only(self):
        values = np.ones((3, 2))
        indptr = np.zeros(4, dtype=np.int64)
        out = gathered_row_sums(values, indptr, np.asarray([], dtype=np.int64))
        assert out.shape == (3, 2) and not out.any()


class TestPathpropStepTables:
    def _tiny_index(self, succ_lists, homes):
        """A minimal stand-in RegionIndex for step-table unit tests."""
        n = len(succ_lists)
        indptr = np.cumsum([0] + [len(s) for s in succ_lists]).astype(np.int64)
        indices = np.asarray(
            [v for s in succ_lists for v in s], dtype=np.int64
        )

        class _Stub:
            pass

        stub = _Stub()
        stub.n = n
        stub.homes = np.asarray(homes, dtype=np.int64)
        return stub, indptr, indices

    def test_first_min_is_first_in_edge_order(self):
        # Node 0's candidates: conf 3.0, 1.0, 1.0 — the *first* 1.0 wins.
        stub, indptr, indices = self._tiny_index(
            [[1, 2, 3], [], [], []], [-1, -1, -1, -1]
        )
        conf = np.array([9.0, 3.0, 1.0, 1.0])
        nxt, nxt_conf = _first_min_steps(indptr, indices, conf, stub)
        assert nxt[0] == 2 and nxt_conf[0] == 1.0
        assert np.all(nxt[1:] == -1) and np.all(np.isinf(nxt_conf[1:]))

    def test_homed_candidates_are_masked(self):
        stub, indptr, indices = self._tiny_index(
            [[1, 2], [], []], [-1, 0, -1]  # node 1 is preplaced
        )
        conf = np.array([9.0, 1.0, 2.0])
        nxt, _ = _first_min_steps(indptr, indices, conf, stub)
        assert nxt[0] == 2  # the homed min-conf candidate never qualifies

    def test_walk_stops_at_source_confidence(self):
        stub, indptr, indices = self._tiny_index(
            [[1], [2], [3], []], [-1, -1, -1, -1]
        )
        conf = np.array([5.0, 3.0, 4.0, 8.0])
        steps = _first_min_steps(indptr, indices, conf, stub)
        # 0 -> 1 (3 < 5), 1 -> 2 (4 < 5), 2 -> 3 blocked (8 >= 5).
        assert _pathprop_walk(steps, 0, conf[0]) == [1, 2]

    def test_walk_never_revisits(self):
        stub, indptr, indices = self._tiny_index(
            [[1], [0], []], [-1, -1, -1]  # 2-cycle in the step table
        )
        conf = np.array([5.0, 1.0, 9.0])
        steps = _first_min_steps(indptr, indices, conf, stub)
        assert _pathprop_walk(steps, 0, conf[0]) == [1]


class TestContractFixturesAgainstKernels:
    def test_vectorized_passes_keep_v4xx_clean(self):
        """The V4xx contract fixtures re-run against the kernel-backed
        passes: every registered pass must stay violation-free."""
        reports = verify_pass_contracts(seed=0)
        assert set(reports) == set(PASS_REGISTRY)
        bad = {name: r.codes() for name, r in reports.items() if not r.ok}
        assert not bad, bad

"""Integration tests: every benchmark x scheduler x machine combination
produces a simulator-verified schedule with correct dataflow.
"""

import pytest

from repro.core import ConvergentScheduler
from repro.machine import ClusteredVLIW, RawMachine, raw_with_tiles
from repro.schedulers import (
    PartialComponentClustering,
    RawccScheduler,
    SingleClusterScheduler,
    UnifiedAssignAndSchedule,
)
from repro.sim import simulate
from repro.workloads import RAW_SUITE, VLIW_SUITE, build_benchmark

SCHEDULERS = {
    "convergent": ConvergentScheduler,
    "uas": UnifiedAssignAndSchedule,
    "pcc": PartialComponentClustering,
    "rawcc": RawccScheduler,
}


@pytest.mark.parametrize("bench_name", VLIW_SUITE)
@pytest.mark.parametrize("scheduler_name", sorted(SCHEDULERS))
def test_vliw_suite_verified(bench_name, scheduler_name):
    machine = ClusteredVLIW(4)
    program = build_benchmark(bench_name, machine)
    scheduler = SCHEDULERS[scheduler_name]()
    for region in program.regions:
        schedule = scheduler.schedule(region, machine)
        report = simulate(region, machine, schedule)
        assert report.ok
        assert report.values_checked == len(region.ddg)


@pytest.mark.parametrize("bench_name", RAW_SUITE)
@pytest.mark.parametrize("scheduler_name", ["convergent", "rawcc"])
def test_raw_suite_verified(bench_name, scheduler_name):
    machine = RawMachine(2, 2)
    program = build_benchmark(bench_name, machine)
    scheduler = SCHEDULERS[scheduler_name]()
    for region in program.regions:
        schedule = scheduler.schedule(region, machine)
        report = simulate(region, machine, schedule)
        assert report.ok


@pytest.mark.parametrize("tiles", [1, 2, 4, 8, 16])
def test_mesh_sizes_all_work(tiles):
    machine = raw_with_tiles(tiles)
    program = build_benchmark("jacobi", machine)
    scheduler = (
        SingleClusterScheduler() if tiles == 1 else ConvergentScheduler()
    )
    schedule = scheduler.schedule(program.regions[0], machine)
    assert simulate(program.regions[0], machine, schedule).ok


def test_partitioning_beats_single_cluster_on_dense_code():
    """The paper's core premise: spatial scheduling pays off on fat
    graphs."""
    parallel_machine = ClusteredVLIW(4)
    single_machine = ClusteredVLIW(1)
    program4 = build_benchmark("mxm", parallel_machine)
    program1 = build_benchmark("mxm", single_machine)
    sched4 = ConvergentScheduler().schedule(program4.regions[0], parallel_machine)
    sched1 = SingleClusterScheduler().schedule(program1.regions[0], single_machine)
    assert sched4.makespan < sched1.makespan


def test_convergent_beats_rawcc_on_preplacement_rich_code():
    """Table 2's headline: preplacement information guides convergent
    scheduling to better partitions on dense-matrix code."""
    machine = raw_with_tiles(16)
    wins = 0
    for benchmark in ("mxm", "swim", "vpenta"):
        program = build_benchmark(benchmark, machine)
        conv = ConvergentScheduler().schedule(program.regions[0], machine)
        rawcc = RawccScheduler().schedule(program.regions[0], machine)
        if conv.makespan <= rawcc.makespan:
            wins += 1
    assert wins >= 2


def test_every_schedule_honours_preplacement():
    machine = raw_with_tiles(4)
    program = build_benchmark("life", machine)
    region = program.regions[0]
    for scheduler_name, factory in SCHEDULERS.items():
        schedule = factory().schedule(region, machine)
        for inst in region.ddg:
            if inst.preplaced:
                assert schedule.cluster_of(inst.uid) == inst.home_cluster, scheduler_name


@pytest.mark.parametrize("bench_name", ["mxm", "jacobi", "fft"])
def test_static_and_dynamic_timing_agree(bench_name):
    """Independent cross-check: a cycle-driven replay of every schedule
    derives the same timing the static model promised."""
    from repro.sim import crosscheck

    machine = raw_with_tiles(4)
    program = build_benchmark(bench_name, machine)
    for scheduler_name, factory in SCHEDULERS.items():
        for region in program.regions:
            schedule = factory().schedule(region, machine)
            crosscheck(region, machine, schedule)

"""Unit tests for the experiment harness (runner, reports, studies)."""

import math

import pytest

from repro.core import ConvergentScheduler
from repro.harness import (
    arithmetic_mean,
    compile_time_scaling,
    convergence_study,
    format_bar_chart,
    format_table,
    geometric_mean,
    raw_speedups,
    run_program,
    run_region,
    vliw_speedups,
)
from repro.harness.speedup import SpeedupTable
from repro.machine import ClusteredVLIW
from repro.schedulers import UnifiedAssignAndSchedule
from repro.workloads import build_benchmark


class TestRunners:
    def test_run_region_reports_verified_cycles(self, vliw4, mxm_vliw):
        result = run_region(mxm_vliw, vliw4, UnifiedAssignAndSchedule())
        assert result.cycles > 0
        assert result.compile_seconds > 0
        assert 0 < result.utilization <= 1

    def test_run_program_weights_by_trip_count(self, vliw4):
        program = build_benchmark("vvmul", vliw4)
        program.regions[0].trip_count = 10
        result = run_program(program, vliw4, UnifiedAssignAndSchedule())
        single = run_region(program.regions[0], vliw4, UnifiedAssignAndSchedule())
        assert result.cycles == single.cycles * 10

    def test_result_metadata(self, vliw4):
        program = build_benchmark("vvmul", vliw4)
        result = run_program(program, vliw4, ConvergentScheduler())
        assert result.benchmark == "vvmul"
        assert result.machine_name == "vliw4"
        assert result.scheduler_name == "convergent"


class TestReporting:
    def test_format_table_aligns(self):
        text = format_table(["name", "x"], [["a", 1.5], ["bb", 2.25]], title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "1.50" in text and "2.25" in text

    def test_format_bar_chart(self):
        text = format_bar_chart({"g": {"a": 2.0, "b": 1.0}}, title="chart")
        assert "chart" in text
        a_bar = next(l for l in text.splitlines() if " a" in l or l.strip().startswith("a"))
        b_bar = next(l for l in text.splitlines() if l.strip().startswith("b"))
        assert a_bar.count("#") > b_bar.count("#")

    def test_means(self):
        assert arithmetic_mean([1.0, 3.0]) == 2.0
        assert geometric_mean([1.0, 4.0]) == 2.0
        assert arithmetic_mean([]) == 0.0
        assert geometric_mean([]) == 0.0


class TestSpeedupTable:
    def make_table(self):
        table = SpeedupTable(sizes=(4,))
        table.speedups = {
            "a": {"x": {4: 2.0}, "y": {4: 1.0}},
            "b": {"x": {4: 3.0}, "y": {4: 2.0}},
        }
        return table

    def test_mean_speedup(self):
        table = self.make_table()
        assert table.mean_speedup("x", 4) == 2.5

    def test_improvement_is_mean_ratio(self):
        table = self.make_table()
        assert table.improvement("x", "y", 4) == pytest.approx((2.0 + 1.5) / 2 - 1)

    def test_render_lists_benchmarks(self):
        text = self.make_table().render("title")
        assert "title" in text and "a" in text and "x/4" in text


class TestStudies:
    def test_small_vliw_speedups(self):
        table = vliw_speedups(benchmarks=("vvmul",), check_values=False)
        value = table.speedups["vvmul"]["convergent"][4]
        assert value > 1.0  # four clusters beat one on a fat kernel
        assert table.baseline_cycles["vvmul"] > 0

    def test_small_raw_speedups(self):
        table = raw_speedups(
            benchmarks=("jacobi",), sizes=(4,), check_values=False
        )
        for scheduler in ("rawcc", "convergent"):
            assert table.speedups["jacobi"][scheduler][4] > 1.0

    def test_convergence_study_series_decay(self, vliw4):
        study = convergence_study(vliw4, ("mxm",))
        series = study.series["mxm"]
        assert series, "expected at least one spatial pass"
        # Churn at the end must be far below the peak: convergence.
        assert series[-1] <= max(series) / 2 or max(series) == 0
        assert "mxm" in study.render()

    def test_compile_time_scaling_shape(self):
        result = compile_time_scaling(sizes=(40, 160))
        for scheduler in ("pcc", "uas", "convergent"):
            assert result.seconds[scheduler][160] > 0
        assert result.growth_factor("pcc") > 1.0
        assert "instrs" in result.render()

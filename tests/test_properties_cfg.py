"""Property-based tests for the CFG -> trace -> region pipeline.

Random layered CFGs (with branches, joins, and skip edges) must always
survive the full front end: validation, liveness, trace formation (a
partition), lowering (valid regions), congruence, scheduling, and
simulation with dataflow replay.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import ConvergentScheduler
from repro.ir import ControlFlowGraph, Opcode, Stmt, form_traces, program_from_cfg
from repro.ir.superblocks import tail_duplicate
from repro.machine import ClusteredVLIW
from repro.sim import simulate
from repro.workloads import apply_congruence

_OPS = [Opcode.FADD, Opcode.FMUL, Opcode.ADD, Opcode.SUB]


@st.composite
def random_cfgs(draw):
    """A layered CFG: each layer flows to the next, sometimes forking."""
    n_layers = draw(st.integers(min_value=2, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    cfg = ControlFlowGraph(f"cfg{seed % 9973}", entry="b0_0", inputs={"in0", "in1"})
    layers = []
    counter = 0
    for layer_index in range(n_layers):
        width = 1 if layer_index == 0 else int(rng.integers(1, 3))
        layer = []
        for _ in range(width):
            name = f"b{layer_index}_{len(layer)}"
            block = cfg.add_block(name)
            # Each block defines a couple of values from what must exist.
            sources = ["in0", "in1"]
            for k in range(int(rng.integers(1, 4))):
                var = f"v{counter}"
                counter += 1
                op = _OPS[int(rng.integers(len(_OPS)))]
                a = sources[int(rng.integers(len(sources)))]
                b = sources[int(rng.integers(len(sources)))]
                block.add(Stmt(var, op, (a, b)))
                sources.append(var)
            layer.append(name)
        layers.append(layer)
    # Wire consecutive layers with probability-weighted edges.
    for upper, lower in zip(layers, layers[1:]):
        for src in upper:
            remaining = 1.0
            for i, dst in enumerate(lower):
                p = remaining if i == len(lower) - 1 else round(remaining * 0.7, 3)
                cfg.add_edge(src, dst, min(p, remaining))
                remaining = max(0.0, remaining - p)
    cfg.propagate_frequencies(entry_count=8.0)
    return cfg


class TestCfgPipelineProperties:
    @given(random_cfgs())
    @settings(max_examples=25, deadline=None)
    def test_traces_partition_blocks(self, cfg):
        traces = form_traces(cfg)
        flat = [name for trace in traces for name in trace]
        assert sorted(flat) == sorted(b.name for b in cfg.blocks())

    @given(random_cfgs())
    @settings(max_examples=25, deadline=None)
    def test_lowered_regions_validate(self, cfg):
        program = program_from_cfg(cfg)
        assert program.regions
        for region in program.regions:
            region.ddg.validate()

    @given(random_cfgs())
    @settings(max_examples=15, deadline=None)
    def test_regions_schedule_and_replay(self, cfg):
        machine = ClusteredVLIW(2)
        program = apply_congruence(program_from_cfg(cfg), machine)
        scheduler = ConvergentScheduler()
        for region in program.regions:
            schedule = scheduler.schedule(region, machine)
            report = simulate(region, machine, schedule)
            assert report.ok

    @given(random_cfgs())
    @settings(max_examples=15, deadline=None)
    def test_tail_duplication_preserves_validity(self, cfg):
        duplicated = tail_duplicate(cfg)
        duplicated.validate()
        # Total statement mass never shrinks (duplication only adds).
        before = sum(len(b.stmts) for b in cfg.blocks())
        after = sum(len(b.stmts) for b in duplicated.blocks())
        assert after >= before

"""Property-based tests for the backend: switch code, register
allocation, and dynamic replay on random graphs and assignments."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.ir.regions import Program
from repro.machine import RawMachine
from repro.machine.switchgen import generate_switch_code, validate_switch_code
from repro.regalloc import allocate_registers, live_intervals, pressure_profile
from repro.schedulers import ListScheduler
from repro.schedulers.list_scheduler import feasible_clusters
from repro.sim import simulate
from repro.sim.dynamic import dynamic_execute
from repro.workloads import apply_congruence

from .test_properties import random_dags


def random_schedule(region, machine, salt):
    """A legal schedule with a random feasible assignment."""
    apply_congruence(Program("p", [region]), machine)
    rng = np.random.default_rng(salt)
    assignment = {}
    for inst in region.ddg:
        feasible = feasible_clusters(inst, machine)
        assignment[inst.uid] = feasible[int(rng.integers(len(feasible)))]
    return ListScheduler().schedule(region, machine, assignment=assignment)


class TestSwitchCodeProperties:
    @given(random_dags(max_nodes=30), st.integers(0, 5))
    @settings(max_examples=20, deadline=None)
    def test_generated_switch_code_is_always_clean(self, region, salt):
        machine = RawMachine(2, 2)
        schedule = random_schedule(region, machine, salt)
        programs = generate_switch_code(schedule, machine)
        assert validate_switch_code(programs, schedule, machine) == []

    @given(random_dags(max_nodes=30), st.integers(0, 5))
    @settings(max_examples=20, deadline=None)
    def test_hop_counts_match_distances(self, region, salt):
        machine = RawMachine(2, 2)
        schedule = random_schedule(region, machine, salt)
        programs = generate_switch_code(schedule, machine)
        total_ops = sum(len(ops) for ops in programs.values())
        expected = sum(
            machine.distance(ev.src, ev.dst) + 1 for ev in schedule.comms
        )
        assert total_ops == expected


class TestRegallocProperties:
    @given(random_dags(max_nodes=30), st.integers(0, 5))
    @settings(max_examples=20, deadline=None)
    def test_intervals_cover_every_operand_read(self, region, salt):
        machine = RawMachine(2, 2)
        schedule = random_schedule(region, machine, salt)
        intervals = {
            (iv.value, iv.cluster): iv
            for iv in live_intervals(region, machine, schedule)
        }
        for uid, op in schedule.ops.items():
            inst = region.ddg.instruction(uid)
            for operand in inst.operands:
                iv = intervals.get((operand, op.cluster))
                assert iv is not None
                assert iv.start <= op.start <= iv.end or iv.end >= op.start

    @given(random_dags(max_nodes=30), st.integers(0, 5))
    @settings(max_examples=20, deadline=None)
    def test_allocation_never_double_books_registers(self, region, salt):
        machine = RawMachine(2, 2, registers=6)
        schedule = random_schedule(region, machine, salt)
        result = allocate_registers(region, machine, schedule)
        intervals = {
            (iv.value, iv.cluster): iv
            for iv in live_intervals(region, machine, schedule)
        }
        by_register = {}
        for (value, cluster), reg in result.assignments.items():
            by_register.setdefault((cluster, reg), []).append(
                intervals[(value, cluster)]
            )
        for ivs in by_register.values():
            ivs.sort(key=lambda iv: iv.start)
            for a, b in zip(ivs, ivs[1:]):
                assert a.end <= b.start

    @given(random_dags(max_nodes=30), st.integers(0, 5))
    @settings(max_examples=20, deadline=None)
    def test_pressure_bounds_allocation(self, region, salt):
        machine = RawMachine(2, 2)
        schedule = random_schedule(region, machine, salt)
        peak = pressure_profile(region, machine, schedule).peak()
        result = allocate_registers(region, machine, schedule)
        # With 30 registers and small graphs, spills imply peak > budget.
        if result.spill_count:
            assert peak > machine.clusters[0].registers - 2


class TestDynamicProperties:
    @given(random_dags(max_nodes=30), st.integers(0, 5))
    @settings(max_examples=20, deadline=None)
    def test_valid_schedules_never_run_late(self, region, salt):
        machine = RawMachine(2, 2)
        schedule = random_schedule(region, machine, salt)
        assert simulate(region, machine, schedule).ok
        report = dynamic_execute(region, machine, schedule)
        assert report.ok
        assert report.cycles <= schedule.makespan

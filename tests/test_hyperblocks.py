"""Unit tests for if-conversion / hyperblock formation."""

import pytest

from repro.core import ConvergentScheduler
from repro.ir import ControlFlowGraph, Opcode, RegionKind, Stmt
from repro.ir.hyperblocks import (
    find_diamonds,
    if_convert,
    program_from_cfg_hyperblocks,
)
from repro.sim import reference_values, simulate
from repro.workloads import apply_congruence

from .test_cfg import diamond_cfg


class TestFindDiamonds:
    def test_finds_the_diamond(self):
        (d,) = find_diamonds(diamond_cfg())
        assert (d.head, d.join) == ("entry", "join")
        assert {d.then_block, d.else_block} == {"then", "else"}

    def test_store_in_arm_blocks_conversion(self):
        cfg = diamond_cfg()
        cfg.block("then").add(Stmt(None, Opcode.STORE, ("y",), bank=0, array="x"))
        assert find_diamonds(cfg) == []

    def test_side_entrance_blocks_conversion(self):
        cfg = diamond_cfg()
        extra = cfg.add_block("extra")
        extra.add(Stmt("z", Opcode.LI, immediate=1.0))
        cfg.add_edge("extra", "then", 1.0)
        assert find_diamonds(cfg) == []

    def test_straight_line_has_no_diamonds(self):
        cfg = ControlFlowGraph("line", inputs=set())
        cfg.add_block("entry").add(Stmt("v", Opcode.LI, immediate=1.0))
        assert find_diamonds(cfg) == []


class TestIfConvert:
    def test_arms_are_inlined(self):
        converted = if_convert(diamond_cfg(), condition_var={"entry": "c"})
        names = {b.name for b in converted.blocks()}
        assert names == {"entry", "join"}
        entry = converted.block("entry")
        opcodes = [s.opcode for s in entry.stmts]
        assert Opcode.FADD in opcodes and Opcode.FSUB in opcodes

    def test_converted_cfg_validates(self):
        converted = if_convert(diamond_cfg(), condition_var={"entry": "c"})
        converted.validate()

    def test_select_semantics_then_side(self):
        """When the condition is 1, the merged value equals the then arm."""
        converted = if_convert(diamond_cfg(), condition_var={"entry": "c"})
        from repro.ir import program_from_cfg

        program = program_from_cfg(converted)
        region = next(r for r in program.regions if "entry" in r.name)
        values = reference_values(region.ddg)
        # Locate the merged y and the arm values by instruction name.
        names = {region.ddg.instruction(u).name: u for u in range(len(region.ddg))}
        assert "y" in names  # merged select output exists

    def test_hyperblock_regions_schedule(self, vliw4):
        program = program_from_cfg_hyperblocks(diamond_cfg())
        apply_congruence(program, vliw4)
        assert all(r.kind is RegionKind.HYPERBLOCK for r in program.regions)
        for region in program.regions:
            schedule = ConvergentScheduler().schedule(region, vliw4)
            assert simulate(region, vliw4, schedule).ok

    def test_hyperblock_merges_both_arms_into_one_region(self):
        program = program_from_cfg_hyperblocks(diamond_cfg())
        # Everything collapses into a single straight-line trace.
        assert len(program.regions) == 1

    def test_if_conversion_exposes_more_ilp(self, vliw4):
        """The if-converted region runs both arms in parallel, so its
        region count drops and total work per region rises."""
        from repro.ir import program_from_cfg

        cfg = diamond_cfg()
        cfg.propagate_frequencies(100)
        traced = program_from_cfg(cfg)
        hyper = program_from_cfg_hyperblocks(diamond_cfg())
        assert len(hyper.regions) < len(traced.regions)

    def test_condition_inference_uses_last_def(self):
        # Without an explicit condition map, the head's final definition
        # (the comparison) is used.
        converted = if_convert(diamond_cfg())
        converted.validate()
        entry = converted.block("entry")
        assert any("__not" in (s.dest or "") for s in entry.stmts)

"""Unit tests for the dynamic timing cross-check."""

import dataclasses

import pytest

from repro.core import ConvergentScheduler
from repro.machine import ClusteredVLIW, raw_with_tiles
from repro.schedulers import ListScheduler, RawccScheduler, UnifiedAssignAndSchedule
from repro.sim.dynamic import crosscheck, dynamic_execute
from repro.workloads import build_benchmark

from .conftest import build_dot_region


class TestAgreement:
    @pytest.mark.parametrize("bench_name", ["jacobi", "mxm", "sha"])
    def test_raw_schedules_replay_exactly(self, bench_name):
        machine = raw_with_tiles(4)
        region = build_benchmark(bench_name, machine).regions[0]
        for scheduler in (ConvergentScheduler(), RawccScheduler()):
            schedule = scheduler.schedule(region, machine)
            crosscheck(region, machine, schedule)  # must not raise

    @pytest.mark.parametrize("bench_name", ["vvmul", "tomcatv"])
    def test_vliw_schedules_replay_exactly(self, bench_name, vliw4):
        region = build_benchmark(bench_name, vliw4).regions[0]
        for scheduler in (ConvergentScheduler(), UnifiedAssignAndSchedule()):
            schedule = scheduler.schedule(region, vliw4)
            crosscheck(region, vliw4, schedule)

    def test_dynamic_cycles_match_makespan(self, vliw4):
        region = build_dot_region(n=8, banks=4)
        schedule = UnifiedAssignAndSchedule().schedule(region, vliw4)
        report = dynamic_execute(region, vliw4, schedule)
        assert report.ok
        assert report.cycles <= schedule.makespan


class TestDisagreement:
    def test_detects_optimistic_start(self, vliw4):
        region = build_dot_region(n=4, banks=4)
        assignment = {i: (0 if i < 8 else 1) for i in range(len(region.ddg))}
        schedule = ListScheduler().schedule(region, vliw4, assignment=assignment)
        # Pull the last instruction to cycle 0: operands not yet there.
        victim = max(schedule.ops.values(), key=lambda op: op.start)
        schedule.ops[victim.uid] = dataclasses.replace(victim, start=0)
        report = dynamic_execute(region, vliw4, schedule)
        assert victim.uid in report.stalled_instructions
        with pytest.raises(AssertionError, match="stalled"):
            crosscheck(region, vliw4, schedule)

    def test_detects_optimistic_transfer(self):
        machine = raw_with_tiles(4)
        region = build_benchmark("jacobi", machine).regions[0]
        schedule = ConvergentScheduler().schedule(region, machine)
        if not schedule.comms:
            pytest.skip("no transfers")
        ev = schedule.comms[0]
        schedule.comms[0] = dataclasses.replace(ev, arrival=ev.issue)
        report = dynamic_execute(region, machine, schedule)
        assert 0 in report.late_transfers

"""Unit tests for the dependence graph and its analyses."""

import pytest

from repro.ir import DataDependenceGraph, GraphError, Instruction, Opcode


def diamond() -> DataDependenceGraph:
    """li -> (add, add) -> fadd: the classic diamond."""
    g = DataDependenceGraph(name="diamond")
    a = g.new_instruction(Opcode.LI)
    b = g.new_instruction(Opcode.ADD, (a.uid,))
    c = g.new_instruction(Opcode.ADD, (a.uid,))
    g.new_instruction(Opcode.ADD, (b.uid, c.uid))
    return g


class TestConstruction:
    def test_uid_must_be_dense(self):
        g = DataDependenceGraph()
        with pytest.raises(GraphError):
            g.add_instruction(Instruction(uid=1, opcode=Opcode.LI))

    def test_new_instruction_adds_data_edges(self):
        g = diamond()
        assert {e.src for e in g.predecessors(3)} == {1, 2}
        assert all(e.kind == "data" for e in g.predecessors(3))

    def test_edge_latency_defaults_to_producer_latency(self):
        g = DataDependenceGraph()
        load = g.new_instruction(Opcode.LOAD)
        use = g.new_instruction(Opcode.ADD, (load.uid,))
        (edge,) = g.predecessors(use.uid)
        assert edge.latency == 3  # R4000 load

    def test_out_of_range_edge_rejected(self):
        g = diamond()
        with pytest.raises(GraphError):
            g.add_dependence(0, 99)

    def test_len_and_iter(self):
        g = diamond()
        assert len(g) == 4
        assert [i.uid for i in g] == [0, 1, 2, 3]


class TestTopology:
    def test_topological_order_respects_edges(self):
        g = diamond()
        order = g.topological_order()
        position = {uid: i for i, uid in enumerate(order)}
        for e in g.edges():
            assert position[e.src] < position[e.dst]

    def test_cycle_detection(self):
        g = diamond()
        g.add_dependence(3, 0, kind="order")
        with pytest.raises(GraphError, match="cycle"):
            g.topological_order()

    def test_roots_and_leaves(self):
        g = diamond()
        assert g.roots() == [0]
        assert g.leaves() == [3]

    def test_neighbors_no_duplicates(self):
        g = DataDependenceGraph()
        a = g.new_instruction(Opcode.LI)
        b = g.new_instruction(Opcode.ADD, (a.uid,))
        g.add_dependence(a.uid, b.uid, kind="order")  # parallel edge
        assert g.neighbors(b.uid) == [a.uid]

    def test_preplaced_listing(self):
        g = DataDependenceGraph()
        g.new_instruction(Opcode.LOAD, home_cluster=1)
        g.new_instruction(Opcode.LI)
        assert g.preplaced() == [0]


class TestTiming:
    def test_earliest_start_of_diamond(self):
        g = diamond()
        est = g.earliest_start()
        assert est[0] == 0
        assert est[1] == est[2] == 1  # after the 1-cycle li
        assert est[3] == 2

    def test_tail_length(self):
        g = diamond()
        tail = g.tail_length()
        assert tail[3] == 0
        assert tail[1] == tail[2] == 1
        assert tail[0] == 2

    def test_critical_path_length_single_node(self):
        g = DataDependenceGraph()
        g.new_instruction(Opcode.ADD)
        assert g.critical_path_length() == 1

    def test_critical_path_length_empty(self):
        assert DataDependenceGraph().critical_path_length() == 0

    def test_cpl_latency_weighted(self):
        g = DataDependenceGraph()
        a = g.new_instruction(Opcode.LOAD)  # lat 3
        b = g.new_instruction(Opcode.FMUL, (a.uid,))  # lat 4
        g.new_instruction(Opcode.FADD, (b.uid,))
        assert g.critical_path_length() == 3 + 4 + 1

    def test_slack_zero_on_critical_path(self):
        g = diamond()
        slack = g.slack()
        assert slack[0] == 0
        assert slack[3] == 0
        assert slack[1] == 0 and slack[2] == 0  # symmetric diamond

    def test_slack_positive_off_critical_path(self):
        g = DataDependenceGraph()
        a = g.new_instruction(Opcode.LI)
        slow = g.new_instruction(Opcode.FMUL, (a.uid,))  # lat 4
        fast = g.new_instruction(Opcode.ADD, (a.uid,))  # lat 1
        g.new_instruction(Opcode.ADD, (slow.uid, fast.uid))
        assert g.slack()[fast.uid] == 3

    def test_levels_are_hop_counts(self):
        g = DataDependenceGraph()
        a = g.new_instruction(Opcode.LOAD)
        b = g.new_instruction(Opcode.FMUL, (a.uid,))
        c = g.new_instruction(Opcode.ADD, (b.uid,))
        assert g.levels() == [0, 1, 2]

    def test_mutation_invalidates_caches(self):
        g = diamond()
        before = g.critical_path_length()
        tail = g.new_instruction(Opcode.FMUL, (3,))
        assert g.critical_path_length() > before


class TestCriticalPath:
    def test_critical_path_is_a_real_path(self):
        g = diamond()
        path = g.critical_path()
        assert path[0] == 0 and path[-1] == 3
        for a, b in zip(path, path[1:]):
            assert any(e.dst == b for e in g.successors(a))

    def test_critical_path_follows_longest_latency(self):
        g = DataDependenceGraph()
        a = g.new_instruction(Opcode.LI)
        slow = g.new_instruction(Opcode.FDIV, (a.uid,))  # lat 12
        fast = g.new_instruction(Opcode.ADD, (a.uid,))
        g.new_instruction(Opcode.ADD, (slow.uid, fast.uid))
        assert slow.uid in g.critical_path()

    def test_empty_graph_path(self):
        assert DataDependenceGraph().critical_path() == []


class TestDistances:
    def test_undirected_distances_ignore_direction(self):
        g = diamond()
        dist = g.undirected_distances([3])
        assert dist[3] == 0
        assert dist[1] == dist[2] == 1
        assert dist[0] == 2

    def test_multi_source(self):
        g = diamond()
        dist = g.undirected_distances([0, 3])
        assert max(dist) == 1

    def test_unreachable_gets_graph_size(self):
        g = DataDependenceGraph()
        g.new_instruction(Opcode.LI)
        g.new_instruction(Opcode.LI)  # disconnected
        dist = g.undirected_distances([0])
        assert dist[1] == len(g)


class TestValidate:
    def test_valid_graph_passes(self):
        diamond().validate()

    def test_operand_without_edge_fails(self):
        g = DataDependenceGraph()
        g.add_instruction(Instruction(uid=0, opcode=Opcode.LI))
        g.add_instruction(Instruction(uid=1, opcode=Opcode.ADD, operands=(0,)))
        with pytest.raises(GraphError, match="no data edge"):
            g.validate()

    def test_reading_valueless_producer_fails(self):
        g = DataDependenceGraph()
        a = g.new_instruction(Opcode.LI)
        store = g.new_instruction(Opcode.STORE, (a.uid,))
        g.new_instruction(Opcode.ADD, (store.uid,))
        with pytest.raises(GraphError, match="defines no value"):
            g.validate()

    def test_mem_edge_between_non_memory_fails(self):
        g = DataDependenceGraph()
        g.new_instruction(Opcode.LI)
        g.new_instruction(Opcode.ADD)
        g.add_dependence(0, 1, kind="mem")
        with pytest.raises(GraphError, match="non-memory"):
            g.validate()

    def test_summary_mentions_name_and_counts(self):
        g = diamond()
        text = g.summary()
        assert "diamond" in text
        assert "4 instrs" in text

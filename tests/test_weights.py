"""Unit tests for the preference matrix — the paper's core interface."""

import math

import numpy as np
import pytest

from repro.core import PreferenceMatrix
from repro.ir import DataDependenceGraph, Opcode


@pytest.fixture
def matrix():
    return PreferenceMatrix(n_instructions=3, n_clusters=4, n_time_slots=5)


class TestConstruction:
    def test_starts_uniform(self, matrix):
        assert np.allclose(matrix.data, 1.0 / 20)
        matrix.check_invariants()

    def test_shape_properties(self, matrix):
        assert matrix.n_instructions == 3
        assert matrix.n_clusters == 4
        assert matrix.n_time_slots == 5

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            PreferenceMatrix(1, 0, 5)
        with pytest.raises(ValueError):
            PreferenceMatrix(1, 4, 0)

    def test_for_region_uses_cpl(self):
        g = DataDependenceGraph()
        a = g.new_instruction(Opcode.LOAD)
        g.new_instruction(Opcode.FADD, (a.uid,))
        from repro.ir.regions import Region

        m = PreferenceMatrix.for_region(g, n_clusters=2)
        assert m.n_time_slots == g.critical_path_length()
        assert m.n_instructions == 2


class TestInvariants:
    def test_normalize_restores_sum(self, matrix):
        matrix.scale(0, 10.0, cluster=1)
        matrix.normalize()
        matrix.check_invariants()

    def test_normalize_resets_zeroed_instruction(self, matrix):
        matrix.data[1] = 0.0
        matrix.touch()
        matrix.normalize()
        matrix.check_invariants()
        assert np.allclose(matrix.data[1], 1.0 / 20)

    def test_check_invariants_detects_negative(self, matrix):
        matrix.data[0, 0, 0] = -0.5
        matrix.touch()
        with pytest.raises(ValueError, match="negative"):
            matrix.check_invariants()

    def test_check_invariants_detects_bad_sum(self, matrix):
        matrix.data[0] *= 2
        matrix.touch()
        with pytest.raises(ValueError, match="sum"):
            matrix.check_invariants()


class TestPreferred:
    def test_preferred_cluster_follows_scaling(self, matrix):
        matrix.scale(0, 5.0, cluster=2)
        assert matrix.preferred_cluster(0) == 2

    def test_preferred_time_follows_scaling(self, matrix):
        matrix.scale(1, 5.0, time=3)
        assert matrix.preferred_time(1) == 3

    def test_vectorized_preferred_match_scalar(self, matrix):
        matrix.scale(0, 3.0, cluster=1)
        matrix.scale(2, 3.0, cluster=3)
        matrix.normalize()
        assert matrix.preferred_clusters() == [
            matrix.preferred_cluster(i) for i in range(3)
        ]
        assert matrix.preferred_times() == [
            matrix.preferred_time(i) for i in range(3)
        ]

    def test_runnerup_cluster(self, matrix):
        matrix.scale(0, 8.0, cluster=1)
        matrix.scale(0, 4.0, cluster=2)
        assert matrix.runnerup_cluster(0) == 2

    def test_runnerup_none_on_single_cluster(self):
        m = PreferenceMatrix(2, 1, 4)
        assert m.runnerup_cluster(0) is None
        assert math.isinf(m.confidence(0))


class TestConfidence:
    def test_uniform_confidence_is_one(self, matrix):
        assert matrix.confidence(0) == pytest.approx(1.0)

    def test_confidence_is_top_over_runnerup(self, matrix):
        matrix.scale(0, 6.0, cluster=0)
        matrix.normalize()
        assert matrix.confidence(0) == pytest.approx(6.0)

    def test_confidences_vector_matches_scalar(self, matrix):
        matrix.scale(1, 3.0, cluster=2)
        matrix.normalize()
        vec = matrix.confidences()
        for i in range(3):
            assert vec[i] == pytest.approx(matrix.confidence(i))

    def test_infinite_confidence_when_runnerup_zero(self, matrix):
        for c in (1, 2, 3):
            matrix.squash_cluster(0, c)
        matrix.normalize()
        assert math.isinf(matrix.confidence(0))


class TestOperations:
    def test_scale_slice_cluster_and_time(self, matrix):
        matrix.scale(0, 2.0, cluster=1, time=2)
        assert matrix.data[0, 1, 2] == pytest.approx(2.0 / 20)
        assert matrix.data[0, 1, 3] == pytest.approx(1.0 / 20)

    def test_scale_negative_rejected(self, matrix):
        with pytest.raises(ValueError):
            matrix.scale(0, -1.0)

    def test_squash_time_outside(self, matrix):
        matrix.squash_time_outside(0, 1, 3)
        assert np.all(matrix.data[0, :, 0] == 0)
        assert np.all(matrix.data[0, :, 4] == 0)
        assert np.all(matrix.data[0, :, 1:4] > 0)

    def test_squash_time_empty_window_raises(self, matrix):
        with pytest.raises(ValueError):
            matrix.squash_time_outside(0, 4, 2)

    def test_squash_cluster(self, matrix):
        matrix.squash_cluster(1, 0)
        matrix.normalize()
        assert matrix.cluster_marginals()[1][0] == 0

    def test_blend_full(self, matrix):
        matrix.scale(0, 10.0, cluster=0)
        matrix.scale(1, 10.0, cluster=3)
        matrix.normalize()
        matrix.blend(1, 0, keep=0.5)
        matrix.normalize()
        # Instruction 1 now has substantial weight on both clusters.
        marg = matrix.cluster_marginals()[1]
        assert marg[0] > 0.2 and marg[3] > 0.2

    def test_blend_keep_range_validated(self, matrix):
        with pytest.raises(ValueError):
            matrix.blend(0, 1, keep=1.5)

    def test_blend_space_preserves_time_profile(self, matrix):
        matrix.scale(0, 10.0, time=2)
        matrix.scale(1, 10.0, cluster=3)
        matrix.normalize()
        before_time = matrix.time_marginals()[0].copy()
        before_time /= before_time.sum()
        matrix.blend_space(0, 1, keep=0.5)
        matrix.normalize()
        after_time = matrix.time_marginals()[0]
        after_time = after_time / after_time.sum()
        assert np.allclose(before_time, after_time, atol=1e-9)
        assert matrix.preferred_cluster(0) == 3 or matrix.cluster_marginals()[0][3] > 0.2

    def test_copy_is_independent(self, matrix):
        clone = matrix.copy()
        matrix.scale(0, 5.0, cluster=1)
        assert clone.data[0, 1, 0] == pytest.approx(1.0 / 20)


class TestEdgeCases:
    """Boundary shapes and parameter extremes."""

    def test_single_instruction_region(self):
        g = DataDependenceGraph()
        g.new_instruction(Opcode.LOAD)
        m = PreferenceMatrix.for_region(g, n_clusters=3)
        assert m.n_instructions == 1
        assert m.preferred_clusters() == [m.preferred_cluster(0)]
        assert m.preferred_times() == [m.preferred_time(0)]
        m.scale(0, 4.0, cluster=2)
        m.normalize()
        m.check_invariants()
        assert m.preferred_cluster(0) == 2
        assert m.health() is None

    def test_zero_instruction_matrix(self):
        m = PreferenceMatrix(0, 2, 3)
        assert m.preferred_clusters() == []
        assert m.preferred_times() == []
        m.normalize()
        m.check_invariants()
        assert m.health() is None

    def test_blend_keep_one_is_identity(self, matrix):
        matrix.scale(0, 5.0, cluster=1)
        matrix.scale(1, 5.0, cluster=3)
        matrix.normalize()
        before = matrix.data[0].copy()
        matrix.blend(0, 1, keep=1.0)
        assert np.allclose(matrix.data[0], before)

    def test_blend_keep_zero_copies_source(self, matrix):
        matrix.scale(0, 5.0, cluster=1)
        matrix.scale(1, 5.0, cluster=3)
        matrix.normalize()
        matrix.blend(0, 1, keep=0.0)
        assert np.allclose(matrix.data[0], matrix.data[1])

    def test_blend_space_keep_one_is_identity(self, matrix):
        matrix.scale(0, 5.0, cluster=1)
        matrix.scale(1, 5.0, cluster=3)
        matrix.normalize()
        before = matrix.data[0].copy()
        matrix.blend_space(0, 1, keep=1.0)
        assert np.allclose(matrix.data[0], before)

    def test_blend_space_keep_zero_adopts_source_marginals(self, matrix):
        matrix.scale(0, 5.0, cluster=1)
        matrix.scale(1, 5.0, cluster=3)
        matrix.normalize()
        matrix.blend_space(0, 1, keep=0.0)
        assert np.allclose(
            matrix.cluster_marginals()[0], matrix.cluster_marginals()[1]
        )

    def test_check_invariants_catches_hand_corruption(self, matrix):
        matrix.data[2, 1, 3] = 7.5  # > 1 and breaks the row sum
        matrix.touch()
        with pytest.raises(ValueError):
            matrix.check_invariants()
        matrix.normalize()
        matrix.check_invariants()

    def test_check_invariants_catches_nan_row(self, matrix):
        matrix.data[0, 0, 0] = np.nan
        matrix.touch()
        with pytest.raises(ValueError):
            matrix.check_invariants()


class TestMarginalCaching:
    def test_marginals_memoized_until_touch(self, matrix):
        first = matrix.cluster_marginals()
        assert matrix.cluster_marginals() is first
        matrix.touch()
        assert matrix.cluster_marginals() is not first

    def test_render_cluster_map_shape(self, matrix):
        matrix.scale(0, 9.0, cluster=2)
        matrix.normalize()
        text = matrix.render_cluster_map()
        lines = text.splitlines()
        assert len(lines) == 3
        assert all("|" in line for line in lines)

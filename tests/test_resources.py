"""Unit tests for the reservation table."""

import pytest

from repro.schedulers.resources import ReservationTable


class TestReservation:
    def test_reserve_and_query(self):
        t = ReservationTable()
        assert t.is_free("fu", 3)
        t.reserve("fu", 3)
        assert not t.is_free("fu", 3)
        assert t.is_free("fu", 4)

    def test_double_booking_rejected(self):
        t = ReservationTable()
        t.reserve(("link", 0, 1), 5)
        with pytest.raises(ValueError):
            t.reserve(("link", 0, 1), 5)

    def test_distinct_keys_independent(self):
        t = ReservationTable()
        t.reserve(("fu", 0, 0), 1)
        assert t.is_free(("fu", 0, 1), 1)
        assert t.is_free(("fu", 1, 0), 1)


class TestPipelineSearch:
    def test_first_free_pipeline_skips_conflicts(self):
        t = ReservationTable()
        keys = ["a", "b", "c"]
        t.reserve("b", 4)  # blocks a start at 3 (b busy at 3+1)
        assert t.first_free_pipeline(keys, 3) == 4
        # starting at 4: a@4, b@5, c@6 -- b free at 5, fine.

    def test_reserve_pipeline_offsets(self):
        t = ReservationTable()
        keys = ["x", "y"]
        t.reserve_pipeline(keys, 10)
        assert not t.is_free("x", 10)
        assert not t.is_free("y", 11)
        assert t.is_free("y", 10)

    def test_empty_pipeline_is_immediate(self):
        t = ReservationTable()
        assert t.first_free_pipeline([], 7) == 7

    def test_back_to_back_pipelines(self):
        t = ReservationTable()
        keys = ["l1", "l2"]
        s1 = t.first_free_pipeline(keys, 0)
        t.reserve_pipeline(keys, s1)
        s2 = t.first_free_pipeline(keys, 0)
        t.reserve_pipeline(keys, s2)
        assert {s1, s2} == {0, 1}


class TestAnySearch:
    def test_picks_first_free_unit(self):
        t = ReservationTable()
        keys = [("fu", 0, 0), ("fu", 0, 1)]
        t.reserve(("fu", 0, 0), 2)
        cycle, key = t.first_free_any(keys, 2)
        assert cycle == 2 and key == ("fu", 0, 1)

    def test_advances_when_all_busy(self):
        t = ReservationTable()
        keys = [("fu", 0, 0)]
        t.reserve(("fu", 0, 0), 0)
        t.reserve(("fu", 0, 0), 1)
        cycle, _ = t.first_free_any(keys, 0)
        assert cycle == 2

    def test_no_candidates_raises(self):
        with pytest.raises(ValueError):
            ReservationTable().first_free_any([], 0)

    def test_utilization_counts(self):
        t = ReservationTable()
        t.reserve("a", 0)
        t.reserve("a", 1)
        t.reserve("b", 0)
        util = t.utilization()
        assert util["a"] == 2 and util["b"] == 1
        only_a = t.utilization(lambda k: k == "a")
        assert list(only_a) == ["a"]

"""Unit tests for opcodes, functional classes, and latency models."""

import pytest

from repro.ir.opcode import (
    FUNC_CLASS,
    FuncClass,
    LatencyModel,
    Opcode,
    func_class,
    is_memory,
    is_pseudo,
)


class TestFuncClass:
    def test_every_opcode_has_a_functional_class(self):
        for opcode in Opcode:
            assert opcode in FUNC_CLASS

    def test_integer_ops_use_ialu(self):
        for opcode in (Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
                       Opcode.SHL, Opcode.SHR, Opcode.SLT):
            assert func_class(opcode) is FuncClass.IALU

    def test_multiply_divide_are_imul_class(self):
        assert func_class(Opcode.MUL) is FuncClass.IMUL
        assert func_class(Opcode.DIV) is FuncClass.IMUL

    def test_fp_ops_use_fpu(self):
        for opcode in (Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV,
                       Opcode.FCMP, Opcode.FSQRT):
            assert func_class(opcode) is FuncClass.FPU

    def test_memory_predicate(self):
        assert is_memory(Opcode.LOAD)
        assert is_memory(Opcode.STORE)
        assert not is_memory(Opcode.ADD)
        assert not is_memory(Opcode.LIVE_IN)

    def test_pseudo_predicate(self):
        assert is_pseudo(Opcode.LIVE_IN)
        assert is_pseudo(Opcode.LIVE_OUT)
        assert not is_pseudo(Opcode.LOAD)
        assert not is_pseudo(Opcode.XFER)


class TestLatencyModel:
    def test_default_latencies_cover_every_opcode(self):
        model = LatencyModel()
        for opcode in Opcode:
            assert model.latency(opcode) >= 0

    def test_r4000_flavour(self):
        model = LatencyModel()
        assert model.latency(Opcode.ADD) == 1
        assert model.latency(Opcode.LOAD) == 3
        assert model.latency(Opcode.FADD) == 4
        assert model.latency(Opcode.FDIV) > model.latency(Opcode.FMUL)

    def test_pseudo_ops_are_free(self):
        model = LatencyModel()
        assert model.latency(Opcode.LIVE_IN) == 0
        assert model.latency(Opcode.LIVE_OUT) == 0

    def test_with_overrides_returns_new_model(self):
        base = LatencyModel()
        fast = base.with_overrides(load=1)
        assert fast.latency(Opcode.LOAD) == 1
        assert base.latency(Opcode.LOAD) == 3

    def test_with_overrides_by_mnemonic(self):
        model = LatencyModel().with_overrides(fmul=7, fadd=2)
        assert model.latency(Opcode.FMUL) == 7
        assert model.latency(Opcode.FADD) == 2

    def test_with_overrides_unknown_mnemonic_raises(self):
        with pytest.raises(ValueError):
            LatencyModel().with_overrides(warp=1)

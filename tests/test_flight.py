"""Flight-recorder suite: quantile histograms, ledgers, timelines, trends.

Four families:

* **quantile histograms** — property tests (hypothesis) for the
  log-bucketed :class:`~repro.observability.metrics.QuantileHistogram`:
  merge is exact and associative at the bucket level, quantile
  estimates respect the documented relative-error bound, and the empty
  histogram is symmetric under serialization (live == round-tripped ==
  merged-empty, the ``to_dict`` asymmetry fix);
* **ledger crash-safety** — flush is atomic, and a truncated or
  corrupt trailing JSONL line is skipped with a counted warning,
  mirroring the schedule cache's quarantine-not-crash policy;
* **engine integration** — every task the engine runs (inline, pooled,
  resilient) emits exactly one record, and a ledger-on run is
  result-identical to a ledger-off run;
* **timeline / trend / CLI** — saturation analysis on synthetic
  ledgers, Chrome trace-event shape, cross-snapshot trend flags, and
  the ``repro timeline`` / ``repro trend`` verbs end to end.
"""

from __future__ import annotations

import copy
import json
import math
import os
import warnings
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import main
from repro.engine import CompilationEngine
from repro.engine.resilience import ResilienceConfig
from repro.harness import run_program
from repro.harness.results import program_result_to_dict
from repro.machine import ClusteredVLIW
from repro.observability import (
    FlightLedger,
    FlightRecord,
    Histogram,
    QuantileHistogram,
    analyze_ledger,
    histogram_from_dict,
    read_ledger,
    render_timeline,
    render_trend,
    to_chrome_trace,
)
from repro.observability.metrics import (
    QUANTILE_BUCKETS_PER_DECADE,
    TELEMETRY_NAMES,
)
from repro.observability.trend import CellTrend, load_trends
from repro.workloads import build_benchmark

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Documented relative-error bound of the bucket layout: half a bucket
#: in log space, ``10**(1/(2*16)) - 1`` ≈ 7.5%.
ERROR_BOUND = 10 ** (1 / (2 * QUANTILE_BUCKETS_PER_DECADE)) - 1

#: Positive samples comfortably inside the regular bucket range.
_samples = st.lists(
    st.floats(min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=60,
)


def scrubbed(result):
    """Result dict with wall-clock fields neutralized (see test_engine)."""
    data = copy.deepcopy(program_result_to_dict(result))
    data["compile_seconds"] = 0.0
    data["metrics"] = None
    for region in data["regions"]:
        region["compile_seconds"] = 0.0
    return data


class TestQuantileHistogram:
    @settings(max_examples=60, deadline=None)
    @given(xs=_samples, ys=_samples)
    def test_merge_is_exact(self, xs, ys):
        together = QuantileHistogram()
        for v in xs + ys:
            together.observe(v)
        left, right = QuantileHistogram(), QuantileHistogram()
        for v in xs:
            left.observe(v)
        for v in ys:
            right.observe(v)
        left.merge(right)
        assert left.buckets == together.buckets
        assert left.count == together.count
        assert left.min == together.min and left.max == together.max
        assert left.total == pytest.approx(together.total)
        for q in (0.5, 0.9, 0.99):
            assert left.quantile(q) == together.quantile(q)

    @settings(max_examples=60, deadline=None)
    @given(xs=_samples, ys=_samples, zs=_samples)
    def test_merge_is_associative(self, xs, ys, zs):
        def histo(values):
            h = QuantileHistogram()
            for v in values:
                h.observe(v)
            return h

        left = histo(xs)
        left.merge(histo(ys))
        left.merge(histo(zs))
        inner = histo(ys)
        inner.merge(histo(zs))
        right = histo(xs)
        right.merge(inner)
        assert left.buckets == right.buckets
        assert (left.count, left.min, left.max) == (right.count, right.min, right.max)
        assert left.total == pytest.approx(right.total)

    @settings(max_examples=60, deadline=None)
    @given(xs=_samples, q=st.sampled_from([0.5, 0.9, 0.99]))
    def test_quantile_error_bound(self, xs, q):
        h = QuantileHistogram()
        for v in xs:
            h.observe(v)
        rank = max(0, min(len(xs) - 1, math.ceil(q * len(xs)) - 1))
        true = sorted(xs)[rank]
        estimate = h.quantile(q)
        assert h.min <= estimate <= h.max
        assert abs(estimate - true) <= (ERROR_BOUND + 1e-9) * true

    @settings(max_examples=60, deadline=None)
    @given(xs=_samples)
    def test_round_trip(self, xs):
        h = QuantileHistogram()
        for v in xs:
            h.observe(v)
        back = histogram_from_dict(h.to_dict())
        assert isinstance(back, QuantileHistogram)
        assert back == h

    def test_dict_carries_quantiles(self):
        h = QuantileHistogram()
        for v in (0.001, 0.002, 0.004, 0.1, 0.5):
            h.observe(v)
        data = h.to_dict()
        for key in ("p50", "p90", "p99", "buckets", "quantile_schema"):
            assert key in data
        assert data["p50"] == h.p50

    def test_merge_plain_histogram_counts_unbucketed(self):
        plain = Histogram()
        plain.observe(3.0)
        plain.observe(5.0)
        q = QuantileHistogram()
        q.observe(1.0)
        q.merge(plain)
        assert q.count == 3
        assert q.unbucketed == 2
        assert q.max == 5.0


class TestEmptyHistogramSymmetry:
    """Satellite: the empty-case ``to_dict`` asymmetry fix."""

    def test_live_empty_equals_round_tripped_empty(self):
        live = Histogram()
        back = Histogram.from_dict(live.to_dict())
        assert back == live
        assert back.to_dict() == live.to_dict()

    def test_live_empty_equals_merged_empty(self):
        merged = Histogram()
        merged.merge(Histogram())
        assert merged == Histogram()

    def test_quantile_empty_round_trips(self):
        live = QuantileHistogram()
        back = histogram_from_dict(live.to_dict())
        assert back == live

    @settings(max_examples=60, deadline=None)
    @given(
        xs=st.lists(
            st.floats(
                min_value=-1e9, max_value=1e9,
                allow_nan=False, allow_infinity=False,
            ),
            max_size=20,
        )
    )
    def test_round_trip_any_sample_including_empty(self, xs):
        h = Histogram()
        for v in xs:
            h.observe(v)
        back = Histogram.from_dict(h.to_dict())
        assert back == h
        merged = Histogram()
        merged.merge(h)
        assert merged == h


def _record(index=0, worker=1, submit=0.0, start=0.0, finish=1.0, **kw):
    """Synthetic flight record with sane defaults."""
    fields = dict(
        index=index,
        region=f"r{index}",
        machine="vliw4",
        scheduler="convergent",
        fingerprint=None,
        cache_status="off",
        worker=worker,
        submit_s=submit,
        start_s=start,
        finish_s=finish,
        queue_wait_s=max(0.0, start - submit),
        execute_s=max(0.0, finish - start),
    )
    fields.update(kw)
    return FlightRecord(**fields)


class TestLedgerRoundTrip:
    def test_flush_and_read(self, tmp_path):
        ledger = FlightLedger()
        ledger.append(_record(0, worker=11))
        ledger.append(_record(1, worker=12, cache_status="hit"))
        path = tmp_path / "sub" / "ledger.jsonl"
        assert ledger.flush(str(path)) == str(path)
        records, skipped = read_ledger(str(path))
        assert skipped == 0
        assert records == ledger.records

    def test_record_dict_round_trip_tags(self):
        record = _record(3, status="timeout", deadline_s=0.5, deadline_slack_s=-0.1)
        data = record.to_dict()
        assert data["kind"] == "flight" and data["schema"] == 1
        assert FlightRecord.from_dict(data) == record

    def test_from_dict_rejects_missing_required(self):
        data = _record().to_dict()
        del data["worker"]
        with pytest.raises(KeyError):
            FlightRecord.from_dict(data)

    def test_flush_leaves_no_temp_files(self, tmp_path):
        ledger = FlightLedger()
        ledger.append(_record())
        ledger.flush(str(tmp_path / "ledger.jsonl"))
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []


class TestLedgerCrashSafety:
    """Satellite: torn trailing lines are skipped with a counted warning."""

    def _write(self, tmp_path, extra_text):
        ledger = FlightLedger()
        ledger.append(_record(0))
        ledger.append(_record(1))
        path = tmp_path / "ledger.jsonl"
        path.write_text(ledger.to_jsonl() + extra_text)
        return path

    def test_truncated_trailing_line_skipped(self, tmp_path):
        full_line = json.dumps(_record(2).to_dict())
        path = self._write(tmp_path, full_line[: len(full_line) // 2])
        with pytest.warns(UserWarning, match="1 corrupt line"):
            records, skipped = read_ledger(str(path))
        assert skipped == 1
        assert [r.index for r in records] == [0, 1]

    def test_garbage_line_skipped(self, tmp_path):
        path = self._write(tmp_path, "not json at all\n")
        with pytest.warns(UserWarning):
            records, skipped = read_ledger(str(path))
        assert (len(records), skipped) == (2, 1)

    def test_non_object_line_skipped(self, tmp_path):
        path = self._write(tmp_path, "[1, 2, 3]\n")
        with pytest.warns(UserWarning):
            _, skipped = read_ledger(str(path))
        assert skipped == 1

    def test_missing_required_key_skipped(self, tmp_path):
        data = _record(2).to_dict()
        del data["status"]
        path = self._write(tmp_path, json.dumps(data) + "\n")
        with pytest.warns(UserWarning):
            records, skipped = read_ledger(str(path))
        assert (len(records), skipped) == (2, 1)

    def test_clean_ledger_warns_nothing(self, tmp_path):
        path = self._write(tmp_path, "")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            records, skipped = read_ledger(str(path))
        assert (len(records), skipped) == (2, 0)


class TestEngineLedger:
    def test_inline_run_emits_one_record_per_region(self):
        machine = ClusteredVLIW(4)
        program = build_benchmark("vvmul", machine)
        from repro.core import ConvergentScheduler

        ledger = FlightLedger()
        result = run_program(
            program, machine, ConvergentScheduler(seed=0),
            check_values=False, ledger=ledger,
        )
        assert len(ledger) == len(program.regions)
        record = ledger.records[0]
        assert record.status == "ok"
        assert record.worker == os.getpid()
        assert record.cycles == result.regions[0].cycles
        assert record.execute_s >= 0.0 and record.finish_s >= record.start_s

    def test_ledger_on_matches_ledger_off(self):
        machine = ClusteredVLIW(4)
        program = build_benchmark("fir", machine)
        from repro.core import ConvergentScheduler

        plain = run_program(
            program, machine, ConvergentScheduler(seed=0), check_values=False
        )
        ledger = FlightLedger()
        logged = run_program(
            program, machine, ConvergentScheduler(seed=0),
            check_values=False, ledger=ledger,
        )
        assert scrubbed(logged) == scrubbed(plain)
        assert len(ledger) == len(program.regions)

    def test_pooled_run_records_worker_pids(self):
        machine = ClusteredVLIW(4)
        program = build_benchmark("vvmul", machine)
        from repro.core import ConvergentScheduler

        ledger = FlightLedger()
        with CompilationEngine(jobs=2, ledger=ledger) as engine:
            run_program(
                program, machine, ConvergentScheduler(seed=0),
                check_values=False, engine=engine,
            )
        assert len(ledger) == len(program.regions)
        assert all(r.worker > 0 for r in ledger.records)
        assert all(r.submit_s > 0 for r in ledger.records)

    def test_resilient_run_records_breaker_state(self):
        machine = ClusteredVLIW(4)
        program = build_benchmark("vvmul", machine)
        from repro.schedulers.fallback import FallbackChain

        # Breakers only apply to routable schedulers (min_level), so
        # the resilient path must run a FallbackChain to see one.
        ledger = FlightLedger()
        result = run_program(
            program, machine, FallbackChain(check_values=False),
            check_values=False, ledger=ledger,
            resilience=ResilienceConfig(),
        )
        assert result.ok
        assert len(ledger) == len(program.regions)
        assert ledger.records[0].breaker == "closed"
        assert ledger.records[0].attempts >= 1

    def test_engine_histograms_always_on(self):
        machine = ClusteredVLIW(4)
        program = build_benchmark("vvmul", machine)
        from repro.core import ConvergentScheduler

        with CompilationEngine(jobs=1) as engine:
            run_program(
                program, machine, ConvergentScheduler(seed=0),
                check_values=False, engine=engine,
            )
            snapshot = engine.telemetry.snapshot()
        histograms = snapshot["histograms"]
        assert "engine.queue_wait_seconds.ok" in histograms
        execute = histograms["engine.execute_seconds.ok"]
        assert execute["count"] == len(program.regions)
        assert "p50" in execute

    def test_emitted_histogram_names_are_documented(self):
        for status in ("ok", "failed", "timeout"):
            assert f"engine.queue_wait_seconds.{status}" in TELEMETRY_NAMES
            assert f"engine.execute_seconds.{status}" in TELEMETRY_NAMES


class TestCampaignLedger:
    def test_faults_campaign_fills_ledger(self):
        from repro.faults import run_campaign

        machine = ClusteredVLIW(4)
        regions = build_benchmark("vvmul", machine).regions
        ledger = FlightLedger()
        report = run_campaign(
            machine, regions, n_trials=4, seed=0, ledger=ledger
        )
        assert report.n_trials == 4
        assert len(ledger) == 4
        assert {r.scheduler for r in ledger.records} == {"fallback"}
        assert all(r.worker > 0 for r in ledger.records)
        statuses = {r.status for r in ledger.records}
        assert statuses <= {"ok", "failed"}


class TestTimelineAnalysis:
    def _ledger(self):
        return [
            _record(0, worker=1, submit=0.0, start=0.0, finish=2.0),
            _record(1, worker=1, submit=0.0, start=2.0, finish=4.0,
                    cache_status="hit"),
            _record(2, worker=2, submit=0.0, start=0.0, finish=3.0,
                    cache_status="miss"),
        ]

    def test_stats(self):
        stats = analyze_ledger(self._ledger())
        assert stats.tasks == 3
        assert stats.workers == [1, 2]
        assert stats.makespan_s == pytest.approx(4.0)
        assert stats.critical_path_s == pytest.approx(4.0)
        assert stats.total_execute_s == pytest.approx(7.0)
        assert stats.total_queue_wait_s == pytest.approx(2.0)
        assert stats.cache_hits == 1 and stats.cache_misses == 1
        by_worker = {lane.worker: lane for lane in stats.lanes}
        assert by_worker[1].busy_s == pytest.approx(4.0)
        assert by_worker[2].idle_fraction == pytest.approx(0.25)

    def test_empty_ledger(self):
        stats = analyze_ledger([])
        assert stats.tasks == 0 and stats.makespan_s == 0.0
        assert render_timeline([]) == "empty ledger"

    def test_render_shows_lanes_and_summary(self):
        text = render_timeline(self._ledger(), width=32)
        assert "w1" in text and "w2" in text
        assert "makespan" in text and "queue depth" in text
        assert "▪" in text  # the cache-hit glyph
        assert "cache 1/2 hits" in text

    def test_stats_to_dict_is_json_safe(self):
        data = analyze_ledger(self._ledger()).to_dict()
        json.dumps(data)
        assert data["tasks"] == 3 and len(data["lanes"]) == 2


class TestChromeTrace:
    def test_trace_event_shape(self):
        trace = to_chrome_trace(
            [
                _record(0, worker=1, submit=0.0, start=0.5, finish=2.0),
                _record(1, worker=2, submit=0.0, start=0.0, finish=1.0),
            ]
        )
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        events = trace["traceEvents"]
        # one wait event (record 0 queued 0.5s) + two execute events
        assert len(events) == 3
        for event in events:
            assert event["ph"] == "X"
            assert {"name", "cat", "ts", "dur", "pid", "tid", "args"} <= set(event)
            assert event["ts"] >= 0 and event["dur"] >= 0
        waits = [e for e in events if e["cat"] == "queue"]
        assert len(waits) == 1 and waits[0]["dur"] == pytest.approx(0.5e6)
        json.dumps(trace)

    def test_empty_ledger_serializes(self):
        assert to_chrome_trace([]) == {"traceEvents": [], "displayTimeUnit": "ms"}


def _seed_snapshots(tmp_path, mutate_cycles=None):
    """Copy BENCH_1.json twice into ``tmp_path`` as snapshots 1 and 2.

    Args:
        tmp_path: Destination directory.
        mutate_cycles: Optional ``cycles`` override applied to the first
            cell of snapshot 2.

    Returns:
        The key (machine, benchmark, scheduler) of the mutated cell.
    """
    source = REPO_ROOT / "BENCH_1.json"
    data = json.loads(source.read_text())
    (tmp_path / "BENCH_1.json").write_text(json.dumps(data))
    data2 = json.loads(source.read_text())
    data2["snapshot_id"] = 2
    cell = data2["cells"][0]
    if mutate_cycles is not None:
        cell["quality"]["cycles"] = mutate_cycles
    (tmp_path / "BENCH_2.json").write_text(json.dumps(data2))
    return (cell["machine"], cell["benchmark"], cell["scheduler"])


class TestTrend:
    def test_flags(self):
        trend = CellTrend(
            benchmark="b", machine="m", scheduler="s",
            snapshot_ids=[1, 2], cycles=[100, 120],
            compile_seconds=[0.1, 0.2],
        )
        assert trend.cycles_regressed and not trend.cycles_improved
        assert trend.timing_warn  # 2x > 1.5x warn ratio
        better = CellTrend(
            benchmark="b", machine="m", scheduler="s",
            snapshot_ids=[1, 2], cycles=[120, 100],
            compile_seconds=[0.2, 0.2],
        )
        assert better.cycles_improved and not better.timing_warn

    def test_load_trends_detects_regression(self, tmp_path):
        machine, benchmark, scheduler = _seed_snapshots(
            tmp_path, mutate_cycles=10**6
        )
        ids, trends = load_trends(root=tmp_path)
        assert ids == [1, 2]
        hot = [t for t in trends if t.key == (benchmark, machine, scheduler)]
        assert len(hot) == 1 and hot[0].cycles_regressed
        text = render_trend(ids, trends)
        assert "!" in text and "regression" in text

    def test_load_trends_filters(self, tmp_path):
        machine, benchmark, scheduler = _seed_snapshots(tmp_path)
        _, trends = load_trends(
            root=tmp_path, machine=machine, benchmark=benchmark,
            scheduler=scheduler,
        )
        assert len(trends) == 1
        assert trends[0].snapshot_ids == [1, 2]

    def test_render_empty(self):
        assert render_trend([], []) == "no snapshots found"


class TestCliVerbs:
    def _flushed_ledger(self, tmp_path):
        ledger = FlightLedger()
        ledger.append(_record(0, worker=5, submit=0.0, start=0.0, finish=1.0))
        ledger.append(_record(1, worker=6, submit=0.0, start=0.2, finish=0.8))
        path = tmp_path / "ledger.jsonl"
        ledger.flush(str(path))
        return path

    def test_timeline_verb(self, capsys, tmp_path):
        path = self._flushed_ledger(tmp_path)
        chrome = tmp_path / "trace.json"
        stats = tmp_path / "stats.json"
        code = main(
            ["timeline", str(path), "--chrome-trace", str(chrome),
             "--json", str(stats)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "makespan" in out and "w5" in out
        trace = json.loads(chrome.read_text())
        assert trace["traceEvents"]
        assert json.loads(stats.read_text())["tasks"] == 2

    def test_timeline_verb_missing_file(self, capsys, tmp_path):
        assert main(["timeline", str(tmp_path / "nope.jsonl")]) == 2

    def test_timeline_verb_empty_ledger(self, capsys, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["timeline", str(path)]) == 2

    def test_trend_verb(self, capsys, tmp_path):
        _seed_snapshots(tmp_path)
        out_json = tmp_path / "trend.json"
        code = main(
            ["trend", "--root", str(tmp_path), "--json", str(out_json)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "trend over snapshots 1, 2" in out
        payload = json.loads(out_json.read_text())
        assert payload["snapshot_ids"] == [1, 2]
        assert payload["cells"]

    def test_trend_verb_no_snapshots(self, capsys, tmp_path):
        assert main(["trend", "--root", str(tmp_path)]) == 2
        assert "no snapshots found" in capsys.readouterr().out

    def test_trace_json(self, capsys, tmp_path):
        out_json = tmp_path / "trace.json"
        code = main(["trace", "vvmul", "--json", str(out_json)])
        assert code == 0
        data = json.loads(out_json.read_text())
        assert data["passes"] and data["final_confidence"] is not None

    def test_profile_json(self, capsys, tmp_path):
        out_json = tmp_path / "profile.json"
        code = main(
            ["profile", "vvmul", "--fast", "--json", str(out_json)]
        )
        assert code == 0
        data = json.loads(out_json.read_text())
        assert data["phases"] and data["wall_ms"] > 0

    def test_faults_ledger_flag(self, capsys, tmp_path):
        path = tmp_path / "faults.jsonl"
        code = main(
            ["faults", "--machine", "vliw4", "--benchmarks", "vvmul",
             "--trials", "3", "--ledger", str(path)]
        )
        assert code == 0
        assert "flight ledger written" in capsys.readouterr().out
        records, skipped = read_ledger(str(path))
        assert (len(records), skipped) == (3, 0)

"""Unit tests for trace formation and trace-to-region lowering."""

import pytest

from repro.core import ConvergentScheduler
from repro.ir import ControlFlowGraph, Opcode, Stmt, form_traces, program_from_cfg
from repro.sim import simulate
from repro.workloads import apply_congruence

from .test_cfg import diamond_cfg


class TestFormTraces:
    def test_every_block_in_exactly_one_trace(self):
        cfg = diamond_cfg()
        cfg.propagate_frequencies(100)
        traces = form_traces(cfg)
        flat = [b for t in traces for b in t]
        assert sorted(flat) == sorted(b.name for b in cfg.blocks())

    def test_hot_path_forms_the_main_trace(self):
        cfg = diamond_cfg()
        cfg.propagate_frequencies(100)
        traces = form_traces(cfg)
        main = traces[0]
        # The 90% side goes through entry->then->join.
        assert main == ["entry", "then", "join"]
        assert ["else"] in traces

    def test_straight_line_is_one_trace(self):
        cfg = ControlFlowGraph("line", inputs=set())
        for name in ("entry", "a", "b"):
            block = cfg.add_block(name)
            block.add(Stmt(f"v{name}", Opcode.LI, immediate=1.0))
        cfg.add_edge("entry", "a")
        cfg.add_edge("a", "b")
        cfg.propagate_frequencies()
        assert form_traces(cfg) == [["entry", "a", "b"]]

    def test_even_branch_still_covers_all_blocks(self):
        cfg = diamond_cfg()
        # Make both sides equally likely: selection is deterministic
        # regardless (ties break by name).
        cfg._succ["entry"] = []
        cfg._pred["then"] = []
        cfg._pred["else"] = []
        cfg.add_edge("entry", "then", 0.5)
        cfg.add_edge("entry", "else", 0.5)
        cfg.propagate_frequencies(10)
        traces = form_traces(cfg)
        flat = sorted(b for t in traces for b in t)
        assert flat == ["else", "entry", "join", "then"]


class TestLowering:
    def lowered(self, machine=None):
        cfg = diamond_cfg()
        cfg.propagate_frequencies(100)
        program = program_from_cfg(cfg)
        if machine is not None:
            apply_congruence(program, machine)
        return program

    def test_program_has_one_region_per_trace(self):
        program = self.lowered()
        assert len(program.regions) == 2

    def test_main_trace_contents(self):
        program = self.lowered()
        main = program.regions[0]
        opcodes = [i.opcode for i in main.ddg if not i.is_pseudo]
        assert Opcode.STORE in opcodes
        assert Opcode.FADD in opcodes  # the hot 'then' side
        assert Opcode.FSUB not in opcodes  # cold side is its own region

    def test_input_variable_becomes_live_in(self):
        program = self.lowered()
        main = program.regions[0]
        live_in_names = {
            main.ddg.instruction(u).name for u in main.live_ins()
        }
        assert "a" in live_in_names

    def test_escaping_value_becomes_live_out(self):
        # In the cold trace ('else'), y escapes to the off-trace join.
        program = self.lowered()
        cold = next(r for r in program.regions if "else" in r.name)
        names = {cold.ddg.instruction(u).name for u in cold.live_outs()}
        assert "y" in names

    def test_trip_count_reflects_frequency(self):
        program = self.lowered()
        main = program.regions[0]
        assert main.trip_count == 100

    def test_regions_validate(self):
        for region in self.lowered().regions:
            region.ddg.validate()

    def test_end_to_end_schedules_and_simulates(self, vliw4):
        program = self.lowered(machine=vliw4)
        for region in program.regions:
            schedule = ConvergentScheduler().schedule(region, vliw4)
            assert simulate(region, vliw4, schedule).ok

    def test_loop_body_region(self, raw4):
        cfg = ControlFlowGraph("loop", inputs={"seed"})
        entry = cfg.add_block("entry")
        entry.add(Stmt("acc", Opcode.MOVE, ("seed",)))
        body = cfg.add_block("body")
        body.add(Stmt("x", Opcode.LOAD, (), bank=1, array="v"))
        body.add(Stmt("acc2", Opcode.FADD, ("acc", "x")))
        body.add(Stmt("acc", Opcode.MOVE, ("acc2",)))
        exit_b = cfg.add_block("exit")
        exit_b.add(Stmt(None, Opcode.STORE, ("acc",), bank=2, array="out"))
        cfg.add_edge("entry", "body")
        cfg.add_edge("body", "body", 0.95)
        cfg.add_edge("body", "exit", 0.05)
        cfg.propagate_frequencies(1.0)
        program = program_from_cfg(cfg)
        apply_congruence(program, raw4)
        for region in program.regions:
            schedule = ConvergentScheduler().schedule(region, raw4)
            assert simulate(region, raw4, schedule).ok
        # The loop-carried variable is live across regions on Raw, so
        # its live-in/out pseudos became preplaced.
        loopy = program.regions[0]
        assert any(
            loopy.ddg.instruction(u).preplaced for u in loopy.live_ins()
        ) or any(
            loopy.ddg.instruction(u).preplaced for u in loopy.live_outs()
        )

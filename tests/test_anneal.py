"""Unit tests for the simulated-annealing baseline (Leupers-style)."""

import pytest

from repro.machine import ClusteredVLIW
from repro.schedulers import SingleClusterScheduler
from repro.schedulers.anneal import SimulatedAnnealingScheduler
from repro.sim import simulate
from repro.workloads import build_benchmark

from .conftest import build_dot_region


class TestAnneal:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SimulatedAnnealingScheduler(moves=-1)
        with pytest.raises(ValueError):
            SimulatedAnnealingScheduler(cooling=0.0)

    def test_valid_schedule(self, vliw4):
        region = build_benchmark("vvmul", vliw4).regions[0]
        schedule = SimulatedAnnealingScheduler(moves=150).schedule(region, vliw4)
        assert simulate(region, vliw4, schedule).ok

    def test_respects_preplacement(self, raw4, jacobi_raw):
        schedule = SimulatedAnnealingScheduler(moves=100).schedule(jacobi_raw, raw4)
        for inst in jacobi_raw.ddg:
            if inst.preplaced:
                assert schedule.cluster_of(inst.uid) == inst.home_cluster
        assert simulate(jacobi_raw, raw4, schedule).ok

    def test_deterministic_given_seed(self, vliw4):
        a = SimulatedAnnealingScheduler(moves=80, seed=3).schedule(
            build_dot_region(n=8), vliw4
        )
        b = SimulatedAnnealingScheduler(moves=80, seed=3).schedule(
            build_dot_region(n=8), vliw4
        )
        assert a.assignment() == b.assignment()

    def test_beats_single_cluster_on_parallel_work(self, vliw4):
        region = build_dot_region(n=16, banks=4)
        annealed = SimulatedAnnealingScheduler(moves=300).schedule(region, vliw4)
        single = ClusteredVLIW(1)
        region1 = build_dot_region(n=16, banks=4)
        baseline = SingleClusterScheduler().schedule(region1, single)
        assert annealed.makespan < baseline.makespan

    def test_more_moves_never_hurt_much(self, vliw4):
        region_a = build_benchmark("vvmul", vliw4).regions[0]
        region_b = build_benchmark("vvmul", vliw4).regions[0]
        short = SimulatedAnnealingScheduler(moves=20, seed=1).schedule(region_a, vliw4)
        long = SimulatedAnnealingScheduler(moves=400, seed=1).schedule(region_b, vliw4)
        assert long.makespan <= short.makespan * 1.2

    def test_zero_moves_is_random_but_legal(self, vliw4):
        region = build_dot_region(n=6)
        schedule = SimulatedAnnealingScheduler(moves=0).schedule(region, vliw4)
        assert simulate(region, vliw4, schedule).ok

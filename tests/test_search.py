"""Unit tests for automatic pass-sequence search."""

import pytest

from repro.core.search import (
    DEFAULT_POOL,
    SequenceSearch,
    evaluate_sequence,
    search_sequence_for,
)
from repro.machine import ClusteredVLIW
from repro.workloads import build_benchmark


@pytest.fixture(scope="module")
def training(request):
    machine = ClusteredVLIW(4)
    regions = [
        build_benchmark("vvmul", machine).regions[0],
        build_benchmark("yuv", machine).regions[0],
    ]
    return machine, regions


class TestEvaluate:
    def test_good_sequence_scores_finite(self, training):
        machine, regions = training
        score = evaluate_sequence(
            ["INITTIME", "NOISE", "PLACE", "LOAD", "COMM", "EMPHCP"],
            regions,
            machine,
        )
        assert 0 < score < float("inf")

    def test_score_is_trip_weighted_sum(self, training):
        machine, regions = training
        regions[0].trip_count = 1
        one = evaluate_sequence(["INITTIME", "COMM"], regions[:1], machine)
        regions[0].trip_count = 7
        seven = evaluate_sequence(["INITTIME", "COMM"], regions[:1], machine)
        regions[0].trip_count = 1
        assert seven == pytest.approx(7 * one)

    def test_unknown_pass_scores_inf(self, training):
        machine, regions = training
        assert evaluate_sequence(["INITTIME", "WARP"], regions, machine) == float("inf")


class TestSearch:
    def test_requires_training_regions(self):
        with pytest.raises(ValueError):
            SequenceSearch(ClusteredVLIW(4), [])

    def test_search_never_regresses(self, training):
        machine, regions = training
        start = ["INITTIME", "NOISE", "COMM", "EMPHCP"]
        search = SequenceSearch(machine, regions, seed=1)
        result = search.run(start=start, iterations=25)
        start_score = evaluate_sequence(start, regions, machine)
        assert result.best_score <= start_score
        scores = [s for _, s in result.history]
        assert scores == sorted(scores, reverse=True)  # monotone improvement

    def test_inittime_always_first(self, training):
        machine, regions = training
        result = search_sequence_for(machine, regions, iterations=15, seed=3)
        assert result.best_sequence[0] == "INITTIME"
        assert "INITTIME" not in result.best_sequence[1:]

    def test_deterministic_given_seed(self, training):
        machine, regions = training
        a = search_sequence_for(machine, regions, iterations=12, seed=5)
        b = search_sequence_for(machine, regions, iterations=12, seed=5)
        assert a.best_sequence == b.best_sequence
        assert a.best_score == b.best_score

    def test_evaluation_budget_respected(self, training):
        machine, regions = training
        result = search_sequence_for(machine, regions, iterations=10, seed=0)
        assert result.evaluations == 11  # start + 10 candidates

    def test_mutations_respect_max_length(self, training):
        machine, regions = training
        search = SequenceSearch(machine, regions, max_length=3, seed=2)
        body = ["NOISE", "COMM", "EMPHCP"]
        for _ in range(50):
            body = search._mutate(body)
            assert len(body) <= 3
            assert all(
                spec.partition("(")[0] in set(p.partition("(")[0] for p in DEFAULT_POOL)
                for spec in body
            )

"""Unit tests for the machine models (clustered VLIW and Raw mesh)."""

import pytest

from repro.ir import Opcode
from repro.ir.opcode import FuncClass, LatencyModel
from repro.machine import ClusteredVLIW, RawMachine, raw_with_tiles, single_cluster_vliw
from repro.machine.fu import Cluster, FunctionalUnit


class TestFunctionalUnits:
    def test_unit_class_check(self):
        fu = FunctionalUnit("ialu", frozenset({FuncClass.IALU}))
        assert fu.can_execute(FuncClass.IALU)
        assert not fu.can_execute(FuncClass.FPU)

    def test_cluster_units_for(self):
        vliw = ClusteredVLIW(1)
        cluster = vliw.clusters[0]
        assert len(cluster.units_for(FuncClass.IALU)) == 2  # ialu + ialu_mem
        assert len(cluster.units_for(FuncClass.MEM)) == 1
        assert len(cluster.units_for(FuncClass.FPU)) == 1
        assert len(cluster.units_for(FuncClass.XFER)) == 1

    def test_issue_width(self):
        assert ClusteredVLIW(1).clusters[0].issue_width == 4
        assert RawMachine(1, 1).clusters[0].issue_width == 1


class TestClusteredVLIW:
    def test_cluster_count(self, vliw4):
        assert vliw4.n_clusters == 4
        assert vliw4.name == "vliw4"

    def test_comm_latency_one_cycle_uniform(self, vliw4):
        for a in range(4):
            for b in range(4):
                expected = 0 if a == b else 1
                assert vliw4.comm_latency(a, b) == expected

    def test_comm_occupies_senders_transfer_unit(self, vliw4):
        (resource,) = vliw4.comm_resources(2, 0)
        assert resource == ("xfer", 2, -1)
        assert vliw4.comm_resources(1, 1) == ()

    def test_soft_memory_affinity(self, vliw4):
        assert vliw4.memory_affinity == "soft"
        assert vliw4.remote_mem_penalty == 1

    def test_banks_interleave(self, vliw4):
        assert [vliw4.bank_home(b) for b in range(6)] == [0, 1, 2, 3, 0, 1]

    def test_pseudo_ops_execute_anywhere(self, vliw4):
        assert vliw4.can_execute(3, FuncClass.PSEUDO)
        assert vliw4.can_execute(0, FuncClass.CONST)

    def test_single_cluster_helper(self):
        assert single_cluster_vliw().n_clusters == 1

    def test_latency_model_override(self):
        m = ClusteredVLIW(2, latency_model=LatencyModel().with_overrides(load=2))
        assert m.latency(Opcode.LOAD) == 2


class TestRawMachine:
    def test_mesh_dimensions(self, raw16):
        assert raw16.rows == raw16.cols == 4
        assert raw16.n_clusters == 16

    def test_coords_roundtrip(self, raw16):
        for tile in range(16):
            r, c = raw16.coords(tile)
            assert raw16.tile_at(r, c) == tile

    def test_coords_out_of_range(self, raw16):
        with pytest.raises(ValueError):
            raw16.coords(16)
        with pytest.raises(ValueError):
            raw16.tile_at(4, 0)

    def test_manhattan_distance(self, raw16):
        assert raw16.distance(0, 0) == 0
        assert raw16.distance(0, 1) == 1
        assert raw16.distance(0, 15) == 6  # (0,0) -> (3,3)

    def test_neighbor_comm_latency_is_three(self, raw16):
        assert raw16.comm_latency(0, 1) == 3
        assert raw16.comm_latency(0, 4) == 3

    def test_extra_hops_cost_one_each(self, raw16):
        assert raw16.comm_latency(0, 2) == 4
        assert raw16.comm_latency(0, 15) == 8

    def test_route_is_dimension_ordered(self, raw16):
        path = raw16.route_path(0, 9)  # (0,0) -> (2,1): x first
        assert path == [0, 1, 5, 9]

    def test_route_resources_include_injection(self, raw16):
        resources = raw16.comm_resources(0, 1)
        assert resources[0] == ("inj", 0, -1)
        assert ("link", 0, 1) in resources

    def test_route_resource_count_matches_hops(self, raw16):
        # injection + 6 links + ejection
        assert len(raw16.comm_resources(0, 15)) == 1 + 6 + 1

    def test_route_resources_include_ejection(self, raw16):
        assert raw16.comm_resources(0, 1)[-1] == ("ej", 1, -1)

    def test_hard_memory_affinity(self, raw16):
        assert raw16.memory_affinity == "hard"

    def test_single_tile_is_single_issue(self):
        tile = RawMachine(1, 1).clusters[0]
        (unit,) = tile.units
        for fc in (FuncClass.IALU, FuncClass.IMUL, FuncClass.MEM, FuncClass.FPU):
            assert unit.can_execute(fc)

    def test_invalid_mesh(self):
        with pytest.raises(ValueError):
            RawMachine(0, 4)


class TestRawWithTiles:
    @pytest.mark.parametrize(
        "tiles,shape",
        [(1, (1, 1)), (2, (1, 2)), (4, (2, 2)), (8, (2, 4)), (16, (4, 4))],
    )
    def test_table2_shapes(self, tiles, shape):
        m = raw_with_tiles(tiles)
        assert (m.rows, m.cols) == shape

    def test_prime_count(self):
        m = raw_with_tiles(7)
        assert m.n_clusters == 7


class TestMachineValidation:
    def test_cluster_indices_must_be_dense(self):
        bad = [Cluster(index=1, units=(FunctionalUnit("u", frozenset({FuncClass.IALU})),))]
        from repro.machine.machine import Machine

        class Dummy(ClusteredVLIW):
            pass

        with pytest.raises(ValueError):
            # Recreate through the base initializer with wrong indices.
            Machine.__init__(Dummy.__new__(Dummy), bad, LatencyModel(), "dummy")

    def test_zero_clusters_rejected(self):
        from repro.machine.machine import Machine

        with pytest.raises(ValueError):
            Machine.__init__(
                ClusteredVLIW.__new__(ClusteredVLIW), [], LatencyModel(), "none"
            )

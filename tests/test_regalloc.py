"""Unit tests for register pressure analysis and linear-scan allocation."""

import pytest

from repro.ir import RegionBuilder
from repro.machine import ClusteredVLIW
from repro.regalloc import (
    allocate_registers,
    live_intervals,
    pressure_profile,
    spill_adjusted_cycles,
)
from repro.schedulers import ListScheduler

from .conftest import build_chain_region, build_dot_region


def schedule_on(region, machine, cluster=0):
    assignment = {i: cluster for i in range(len(region.ddg))}
    return ListScheduler().schedule(region, machine, assignment=assignment)


class TestLiveIntervals:
    def test_interval_spans_definition_to_last_use(self, vliw1):
        b = RegionBuilder("r")
        x = b.li(1.0)
        y = b.fadd(x, x)
        z = b.fadd(y, x)  # x used late
        b.live_out(z)
        region = b.build()
        schedule = schedule_on(region, vliw1)
        intervals = {iv.value: iv for iv in live_intervals(region, vliw1, schedule)}
        x_iv = intervals[x.uid]
        assert x_iv.start == schedule.ops[x.uid].finish
        assert x_iv.end == schedule.ops[z.uid].start

    def test_transferred_value_lives_on_both_clusters(self, vliw4):
        b = RegionBuilder("r")
        x = b.li(1.0)
        y = b.fadd(x, x)
        b.live_out(y)
        region = b.build()
        assignment = {x.uid: 0, y.uid: 1, 2: 1}
        schedule = ListScheduler().schedule(region, vliw4, assignment=assignment)
        clusters = {iv.cluster for iv in live_intervals(region, vliw4, schedule)
                    if iv.value == x.uid}
        assert clusters == {0, 1}

    def test_live_out_extends_to_end(self, vliw1, chain_region):
        schedule = schedule_on(chain_region, vliw1)
        out_uid = chain_region.live_outs()[0]
        producer = chain_region.ddg.instruction(out_uid).operands[0]
        intervals = [iv for iv in live_intervals(chain_region, vliw1, schedule)
                     if iv.value == producer]
        assert max(iv.end for iv in intervals) == schedule.makespan

    def test_overlap_query(self, vliw1, dot_region):
        schedule = schedule_on(dot_region, vliw1)
        for iv in live_intervals(dot_region, vliw1, schedule):
            assert iv.overlaps(iv.start)
            assert iv.overlaps(iv.end)
            assert not iv.overlaps(iv.end + 1)


class TestPressure:
    def test_chain_pressure_is_low(self, vliw1, chain_region):
        schedule = schedule_on(chain_region, vliw1)
        profile = pressure_profile(chain_region, vliw1, schedule)
        assert profile.peak() <= 4

    def test_wide_region_pressure_is_higher(self, vliw1):
        wide = build_dot_region(n=16, banks=1)
        narrow = build_chain_region(length=8)
        wide_peak = pressure_profile(wide, vliw1, schedule_on(wide, vliw1)).peak()
        narrow_peak = pressure_profile(
            narrow, vliw1, schedule_on(narrow, vliw1)
        ).peak()
        assert wide_peak > narrow_peak

    def test_partitioning_reduces_per_cluster_pressure(self, vliw4):
        region = build_dot_region(n=16, banks=4)
        all_one = schedule_on(region, vliw4, cluster=0)
        peak_one = pressure_profile(region, vliw4, all_one).max_pressure[0]
        spread = {i: i % 4 for i in range(len(region.ddg))}
        spread_schedule = ListScheduler().schedule(region, vliw4, assignment=spread)
        spread_profile = pressure_profile(region, vliw4, spread_schedule)
        assert max(spread_profile.max_pressure.values()) <= peak_one


class TestLinearScan:
    def test_no_spills_with_ample_registers(self, vliw1, dot_region):
        schedule = schedule_on(dot_region, vliw1)
        result = allocate_registers(dot_region, vliw1, schedule)
        assert result.spill_count == 0

    def test_spills_appear_when_registers_scarce(self):
        tiny = ClusteredVLIW(1, registers=4)
        region = build_dot_region(n=16, banks=1)
        schedule = schedule_on(region, tiny)
        result = allocate_registers(region, tiny, schedule)
        assert result.spill_count > 0
        assert result.spill_cost_cycles > 0

    def test_assigned_registers_within_file(self, vliw1, dot_region):
        schedule = schedule_on(dot_region, vliw1)
        result = allocate_registers(dot_region, vliw1, schedule, reserved=2)
        for (_value, _cluster), reg in result.assignments.items():
            assert 0 <= reg < vliw1.clusters[0].registers - 2

    def test_no_two_overlapping_values_share_a_register(self, vliw1):
        region = build_dot_region(n=8, banks=1)
        schedule = schedule_on(region, vliw1)
        result = allocate_registers(region, vliw1, schedule)
        intervals = {
            (iv.value, iv.cluster): iv
            for iv in live_intervals(region, vliw1, schedule)
        }
        by_register = {}
        for key, reg in result.assignments.items():
            by_register.setdefault((key[1], reg), []).append(intervals[key])
        for (_cluster, _reg), ivs in by_register.items():
            ivs.sort(key=lambda iv: iv.start)
            for a, b in zip(ivs, ivs[1:]):
                assert a.end <= b.start or b.end <= a.start or a.end < b.start + 1

    def test_spill_adjusted_cycles_monotone(self, vliw1, dot_region):
        schedule = schedule_on(dot_region, vliw1)
        assert spill_adjusted_cycles(dot_region, vliw1, schedule) >= schedule.makespan

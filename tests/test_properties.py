"""Property-based tests (hypothesis) on core data structures and
invariants.

Three families:

* the preference matrix keeps its two invariants under arbitrary pass
  operations;
* DDG analyses (earliest/tail/CPL/levels) satisfy their defining
  inequalities on random DAGs;
* the list scheduler produces simulator-clean schedules for random
  graphs, random machines, and random assignments.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import PreferenceMatrix
from repro.ir import DataDependenceGraph, Opcode, RegionBuilder
from repro.ir.regions import Program, Region
from repro.machine import ClusteredVLIW, RawMachine
from repro.schedulers import ListScheduler, UnifiedAssignAndSchedule
from repro.schedulers.list_scheduler import feasible_clusters
from repro.sim import simulate
from repro.workloads import apply_congruence

_ARITH = [Opcode.ADD, Opcode.FADD, Opcode.FMUL, Opcode.SUB, Opcode.MUL]


@st.composite
def random_dags(draw, max_nodes=40):
    """A random connected-ish DAG with loads, stores, and arithmetic."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    b = RegionBuilder(f"prop{seed % 997}")
    values = [b.li(float(rng.integers(1, 9)))]
    for _ in range(n):
        kind = rng.random()
        if kind < 0.15:
            values.append(b.load(bank=int(rng.integers(0, 8)), array="a"))
        elif kind < 0.25 and values:
            b.store(values[int(rng.integers(len(values)))],
                    bank=int(rng.integers(0, 8)), array="out")
        else:
            op = _ARITH[int(rng.integers(len(_ARITH)))]
            x = values[int(rng.integers(len(values)))]
            y = values[int(rng.integers(len(values)))]
            values.append(b.op(op, x, y))
    b.live_out(values[-1])
    return b.build()


@st.composite
def matrices(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    c = draw(st.integers(min_value=1, max_value=6))
    t = draw(st.integers(min_value=1, max_value=10))
    return PreferenceMatrix(n, c, t)


class TestMatrixInvariants:
    @given(matrices(), st.integers(0, 1000), st.floats(0.0, 100.0))
    @settings(max_examples=60, deadline=None)
    def test_scale_then_normalize_preserves_invariants(self, m, which, factor):
        i = which % m.n_instructions
        c = which % m.n_clusters
        m.scale(i, factor, cluster=c)
        m.normalize()
        m.check_invariants()

    @given(matrices(), st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_squash_never_leaves_unschedulable_instruction(self, m, which):
        i = which % m.n_instructions
        for c in range(m.n_clusters):
            m.squash_cluster(i, c)  # squash everything
        m.normalize()
        m.check_invariants()
        assert m.cluster_marginals()[i].sum() > 0

    @given(matrices(), st.integers(0, 1000), st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_blend_preserves_invariants(self, m, which, keep):
        if m.n_instructions < 2:
            return
        a, b = which % m.n_instructions, (which + 1) % m.n_instructions
        m.scale(a, 7.0, cluster=which % m.n_clusters)
        m.normalize()
        m.blend(b, a, keep=keep)
        m.normalize()
        m.check_invariants()

    @given(matrices())
    @settings(max_examples=40, deadline=None)
    def test_confidence_at_least_one(self, m):
        conf = m.confidences()
        assert np.all(conf >= 1.0 - 1e-9)


class TestDdgProperties:
    @given(random_dags())
    @settings(max_examples=40, deadline=None)
    def test_timing_inequalities(self, region):
        ddg = region.ddg
        est = ddg.earliest_start()
        tail = ddg.tail_length()
        cpl = ddg.critical_path_length()
        for uid in range(len(ddg)):
            assert est[uid] + tail[uid] <= cpl - 1
        for e in ddg.edges():
            assert est[e.dst] >= est[e.src] + e.latency
            assert tail[e.src] >= tail[e.dst] + e.latency

    @given(random_dags())
    @settings(max_examples=40, deadline=None)
    def test_topological_order_is_permutation(self, region):
        order = region.ddg.topological_order()
        assert sorted(order) == list(range(len(region.ddg)))

    @given(random_dags())
    @settings(max_examples=40, deadline=None)
    def test_critical_path_length_matches_path(self, region):
        ddg = region.ddg
        path = ddg.critical_path()
        total = 1
        for a, b in zip(path, path[1:]):
            latency = max(e.latency for e in ddg.successors(a) if e.dst == b)
            total += latency
        assert total == ddg.critical_path_length()

    @given(random_dags())
    @settings(max_examples=30, deadline=None)
    def test_slack_non_negative(self, region):
        assert all(s >= 0 for s in region.ddg.slack())


class TestSchedulerProperties:
    @given(random_dags(), st.integers(1, 4), st.integers(0, 3))
    @settings(max_examples=30, deadline=None)
    def test_list_scheduler_always_legal_on_vliw(self, region, n_clusters, salt):
        machine = ClusteredVLIW(n_clusters)
        apply_congruence(Program("p", [region]), machine)
        rng = np.random.default_rng(salt)
        assignment = {}
        for inst in region.ddg:
            feasible = feasible_clusters(inst, machine)
            assignment[inst.uid] = feasible[int(rng.integers(len(feasible)))]
        schedule = ListScheduler().schedule(region, machine, assignment=assignment)
        report = simulate(region, machine, schedule)
        assert report.ok
        assert report.values_checked == len(region.ddg)

    @given(random_dags(max_nodes=25))
    @settings(max_examples=20, deadline=None)
    def test_uas_always_legal_on_raw(self, region):
        machine = RawMachine(2, 2)
        apply_congruence(Program("p", [region]), machine)
        schedule = UnifiedAssignAndSchedule().schedule(region, machine)
        assert simulate(region, machine, schedule).ok

    @given(random_dags(max_nodes=25))
    @settings(max_examples=20, deadline=None)
    def test_makespan_at_least_cpl_bound(self, region):
        machine = ClusteredVLIW(4)
        apply_congruence(Program("p", [region]), machine)
        schedule = UnifiedAssignAndSchedule().schedule(region, machine)
        # Any legal schedule is at least as long as the latency-weighted
        # critical path (minus the trailing result's latency handling).
        est = region.ddg.earliest_start()
        assert schedule.makespan >= max(est, default=0)

"""Unit tests for LEVEL and PATHPROP."""

import numpy as np
import pytest

from repro.core import PreferenceMatrix
from repro.core.passes import (
    LevelDistribute,
    PassContext,
    PathPropagate,
    Place,
)
from repro.ir import RegionBuilder


def make_ctx(region, machine, seed=0):
    matrix = PreferenceMatrix.for_region(region.ddg, machine.n_clusters)
    return PassContext(
        ddg=region.ddg, machine=machine, matrix=matrix,
        rng=np.random.default_rng(seed),
    )


def parallel_strands(n_strands=8, length=3):
    """Independent chains: ideal input for LEVEL distribution."""
    b = RegionBuilder("strands")
    for s in range(n_strands):
        v = b.live_in(name=f"in{s}")
        for _ in range(length):
            v = b.fmul(v, v)
        b.live_out(v, name=f"out{s}")
    return b.build()


class TestLevelDistribute:
    def test_spreads_independent_strands(self, vliw4):
        region = parallel_strands()
        ctx = make_ctx(region, vliw4)
        LevelDistribute().apply(ctx)
        ctx.matrix.check_invariants()
        preferred = [
            ctx.matrix.preferred_cluster(i) for i in region.real_instructions()
        ]
        # All four clusters should receive work.
        assert len(set(preferred)) == vliw4.n_clusters

    def test_balanced_distribution(self, vliw4):
        region = parallel_strands(n_strands=8, length=2)
        ctx = make_ctx(region, vliw4)
        LevelDistribute(stride=8).apply(ctx)
        counts = np.bincount(
            [ctx.matrix.preferred_cluster(i) for i in region.real_instructions()],
            minlength=4,
        )
        assert counts.max() - counts.min() <= max(4, counts.mean())

    def test_preplaced_memory_seeds_its_home_bin(self, vliw4):
        b = RegionBuilder("r")
        anchor = b.load(bank=2, name="a", array="a")
        v = b.fmul(anchor, anchor)
        b.live_out(v)
        region = b.build()
        region.ddg.instruction(anchor.uid).home_cluster = 2
        ctx = make_ctx(region, vliw4)
        Place().apply(ctx)
        LevelDistribute(stride=8, granularity=3).apply(ctx)
        # The multiply sits one hop from the anchor: within granularity,
        # so it joins the anchor's bin rather than being dealt far away.
        assert ctx.matrix.preferred_cluster(v.uid) == 2

    def test_preplaced_live_ins_do_not_anchor_bins(self, vliw4):
        # Eight live-in taps pinned to cluster 0 (the Chorus convention)
        # must not drag the real work onto cluster 0: copying a register
        # out once is cheap, serializing the compute is not.
        b = RegionBuilder("r")
        taps = [b.live_in(name=f"h{i}", home_cluster=0) for i in range(8)]
        outs = [b.fmul(t, t) for t in taps]
        for o in outs:
            b.live_out(o)
        region = b.build()
        ctx = make_ctx(region, vliw4)
        Place().apply(ctx)
        LevelDistribute(stride=8, granularity=3).apply(ctx)
        preferred = {ctx.matrix.preferred_cluster(o.uid) for o in outs}
        assert len(preferred) > 1

    def test_confident_instructions_keep_cluster(self, vliw4):
        region = parallel_strands(n_strands=4, length=2)
        ctx = make_ctx(region, vliw4)
        target = region.real_instructions()[0]
        ctx.matrix.scale(target, 50.0, cluster=3)
        ctx.matrix.normalize()
        LevelDistribute().apply(ctx)
        assert ctx.matrix.preferred_cluster(target) == 3

    def test_invalid_stride_rejected(self):
        with pytest.raises(ValueError):
            LevelDistribute(stride=0)

    def test_empty_region(self, vliw4):
        b = RegionBuilder("tiny")
        b.li(1.0)
        region = b.build()
        ctx = make_ctx(region, vliw4)
        LevelDistribute().apply(ctx)  # must not raise


class TestPathPropagate:
    def chain_with_confident_head(self, vliw4, cluster=1):
        b = RegionBuilder("r")
        v0 = b.live_in(name="v0")
        v1 = b.fmul(v0, v0)
        v2 = b.fmul(v1, v1)
        v3 = b.fmul(v2, v2)
        b.live_out(v3)
        region = b.build()
        ctx = make_ctx(region, vliw4)
        ctx.matrix.scale(v0.uid, 40.0, cluster=cluster)
        ctx.matrix.normalize()
        return region, ctx, (v0, v1, v2, v3)

    def test_propagates_downward(self, vliw4):
        region, ctx, (v0, v1, v2, v3) = self.chain_with_confident_head(vliw4)
        PathPropagate(threshold=1.5).apply(ctx)
        for v in (v1, v2, v3):
            assert ctx.matrix.preferred_cluster(v.uid) == 1

    def test_propagates_upward(self, vliw4):
        b = RegionBuilder("r")
        v0 = b.live_in(name="v0")
        v1 = b.fmul(v0, v0)
        v2 = b.fmul(v1, v1)
        b.live_out(v2)
        region = b.build()
        ctx = make_ctx(region, vliw4)
        ctx.matrix.scale(v2.uid, 40.0, cluster=3)
        ctx.matrix.normalize()
        PathPropagate(threshold=1.5).apply(ctx)
        assert ctx.matrix.preferred_cluster(v1.uid) == 3

    def test_no_confident_sources_is_noop(self, vliw4):
        b = RegionBuilder("r")
        x = b.live_in()
        b.live_out(b.fadd(x, x))
        region = b.build()
        ctx = make_ctx(region, vliw4)
        before = ctx.matrix.data.copy()
        PathPropagate(threshold=1.5).apply(ctx)
        assert np.allclose(ctx.matrix.data, before)

    def test_does_not_overwrite_preplaced(self, vliw4):
        b = RegionBuilder("r")
        v0 = b.live_in(name="v0")
        v1 = b.fmul(v0, v0)
        pinned = b.live_out(v1, home_cluster=2)
        region = b.build()
        ctx = make_ctx(region, vliw4)
        Place().apply(ctx)
        ctx.matrix.scale(v0.uid, 40.0, cluster=1)
        ctx.matrix.normalize()
        PathPropagate(threshold=1.5).apply(ctx)
        assert ctx.matrix.preferred_cluster(pinned.uid) == 2

    def test_invariants_hold_after_pass(self, vliw4):
        region, ctx, _ = self.chain_with_confident_head(vliw4)
        PathPropagate(threshold=1.2).apply(ctx)
        ctx.matrix.normalize()
        ctx.matrix.check_invariants()

"""Unit tests for the benchmark kernel generators."""

import pytest

from repro.analysis import graph_shape
from repro.ir import Opcode
from repro.machine import ClusteredVLIW, RawMachine
from repro.workloads import (
    KERNELS,
    LOW_PREPLACEMENT,
    RAW_SUITE,
    VLIW_SUITE,
    build_benchmark,
    suite_for_machine,
)


class TestSuiteDefinitions:
    def test_raw_suite_matches_table2(self):
        assert RAW_SUITE == (
            "cholesky", "tomcatv", "vpenta", "mxm", "fpppp-kernel",
            "sha", "swim", "jacobi", "life",
        )

    def test_vliw_suite_matches_figure8(self):
        assert VLIW_SUITE == (
            "vvmul", "rbsorf", "yuv", "tomcatv", "mxm", "fir", "cholesky",
        )

    def test_every_suite_member_has_a_kernel(self):
        for name in RAW_SUITE + VLIW_SUITE:
            assert name in KERNELS

    def test_suite_for_machine(self, raw4, vliw4):
        assert suite_for_machine(raw4) == RAW_SUITE
        assert suite_for_machine(vliw4) == VLIW_SUITE

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            build_benchmark("doom")


class TestGraphValidity:
    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_kernel_builds_valid_graph(self, name):
        program = build_benchmark(name)
        for region in program.regions:
            region.ddg.validate()
            assert len(region.ddg) > 0

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_congruence_preplaces_memory(self, name, raw16):
        program = build_benchmark(name, raw16)
        region = program.regions[0]
        for inst in region.ddg:
            if inst.is_memory and inst.bank is not None:
                assert inst.home_cluster == raw16.bank_home(inst.bank)

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_kernels_are_deterministic(self, name):
        a = build_benchmark(name)
        b = build_benchmark(name)
        assert len(a.regions[0].ddg) == len(b.regions[0].ddg)
        assert a.regions[0].ddg.edge_count() == b.regions[0].ddg.edge_count()


class TestGraphShapes:
    def test_dense_kernels_are_fat(self, raw16):
        for name in ("mxm", "jacobi", "life", "swim", "vpenta"):
            shape = graph_shape(build_benchmark(name, raw16).regions[0].ddg)
            assert shape.is_fat, f"{name} should be a fat graph"

    def test_hard_kernels_are_preplacement_poor(self, raw16):
        fat_fraction = graph_shape(
            build_benchmark("mxm", raw16).regions[0].ddg
        ).preplaced_fraction
        for name in LOW_PREPLACEMENT:
            shape = graph_shape(build_benchmark(name, raw16).regions[0].ddg)
            assert shape.preplaced_fraction < fat_fraction / 2

    def test_fpppp_has_limited_parallelism(self, raw16):
        fpppp = graph_shape(build_benchmark("fpppp-kernel", raw16).regions[0].ddg)
        mxm = graph_shape(build_benchmark("mxm", raw16).regions[0].ddg)
        assert fpppp.parallelism < mxm.parallelism

    def test_unroll_scales_size(self):
        small = build_benchmark("jacobi", unroll=4)
        large = build_benchmark("jacobi", unroll=16)
        assert len(large.regions[0].ddg) > 3 * len(small.regions[0].ddg)


class TestKernelSemantics:
    def test_mxm_has_dot_product_structure(self):
        program = build_benchmark("mxm", unroll=2, depth=4)
        ddg = program.regions[0].ddg
        fmuls = [i for i in ddg if i.opcode is Opcode.FMUL]
        stores = [i for i in ddg if i.opcode is Opcode.STORE]
        assert len(fmuls) == 2 * 4
        assert len(stores) == 2

    def test_cholesky_contains_sqrt_and_div(self):
        ddg = build_benchmark("cholesky").regions[0].ddg
        opcodes = {i.opcode for i in ddg}
        assert Opcode.FSQRT in opcodes
        assert Opcode.FDIV in opcodes

    def test_sha_is_integer_code(self):
        ddg = build_benchmark("sha").regions[0].ddg
        assert not any(
            i.opcode in (Opcode.FADD, Opcode.FMUL, Opcode.FSUB) for i in ddg
        )

    def test_fpppp_is_nearly_memory_free(self):
        ddg = build_benchmark("fpppp-kernel").regions[0].ddg
        memory = sum(1 for i in ddg if i.is_memory)
        assert memory == 0

    def test_yuv_three_outputs_per_pixel(self):
        ddg = build_benchmark("yuv", unroll=2).regions[0].ddg
        stores = [i for i in ddg if i.opcode is Opcode.STORE]
        assert len(stores) == 6

    def test_fir_taps_are_live_ins(self):
        program = build_benchmark("fir", taps=8)
        assert len(program.regions[0].live_ins()) == 8


class TestFft:
    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            build_benchmark("fft", points=12)

    def test_butterfly_count(self):
        # N=8: log2(8)=3 stages x N/2=4 butterflies, 10 flops each.
        ddg = build_benchmark("fft", points=8).regions[0].ddg
        flops = sum(
            1 for i in ddg
            if i.opcode in (Opcode.FADD, Opcode.FSUB, Opcode.FMUL)
        )
        assert flops == 3 * 4 * 10

    def test_log_depth_structure(self):
        from repro.analysis import graph_shape

        small = graph_shape(build_benchmark("fft", points=8).regions[0].ddg)
        large = graph_shape(build_benchmark("fft", points=32).regions[0].ddg)
        # Doubling N twice adds only two butterfly stages of depth.
        assert large.critical_path_length <= small.critical_path_length * 2

    def test_schedules_on_both_machines(self, vliw4, raw4):
        from repro.core import ConvergentScheduler
        from repro.sim import simulate

        for machine in (vliw4, raw4):
            region = build_benchmark("fft", machine, points=8).regions[0]
            schedule = ConvergentScheduler().schedule(region, machine)
            assert simulate(region, machine, schedule).ok


class TestExtraNasa7Kernels:
    """btrix, gmtry, emit: the remaining Nasa7 kernels (extras, not in
    the paper's tables)."""

    @pytest.mark.parametrize("name", ["btrix", "gmtry", "emit"])
    def test_valid_and_schedulable(self, name, vliw4):
        from repro.core import ConvergentScheduler
        from repro.sim import simulate

        program = build_benchmark(name, vliw4)
        region = program.regions[0]
        region.ddg.validate()
        schedule = ConvergentScheduler().schedule(region, vliw4)
        assert simulate(region, vliw4, schedule).ok

    def test_btrix_recurrence_depth(self):
        ddg = build_benchmark("btrix", unroll=2, block=4).regions[0].ddg
        # Each elimination step chains a divide (12) and fsub/fmul.
        assert ddg.critical_path_length() > 4 * 12

    def test_gmtry_shares_one_reciprocal(self):
        ddg = build_benchmark("gmtry", rows=4).regions[0].ddg
        divides = [i for i in ddg if i.opcode is Opcode.FDIV]
        assert len(divides) == 1
        fanout = len(ddg.successors(divides[0].uid))
        assert fanout == 4  # one factor per row

    def test_emit_is_parallel_across_particles(self, raw16):
        from repro.analysis import graph_shape

        shape = graph_shape(build_benchmark("emit", raw16, particles=16).regions[0].ddg)
        assert shape.is_fat

    def test_extras_listed_in_cli(self, capsys):
        from repro.cli import main

        main(["list"])
        out = capsys.readouterr().out
        assert "btrix" in out and "gmtry" in out and "emit" in out and "fft" in out
